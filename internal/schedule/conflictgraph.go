package schedule

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/network"
)

// ConflictGraph is the graph whose vertices are connection requests and
// whose edges join pairs of requests that cannot share a configuration. The
// coloring scheduler colors this graph; the number of colors equals the
// multiplexing degree.
//
// Adjacency is stored as one bitset row per vertex so that degree updates
// and neighborhood scans during coloring stay cache-friendly even for the
// 4032-request all-to-all pattern of the paper's 8x8 torus.
type ConflictGraph struct {
	n    int
	rows [][]uint64
	deg  []int
}

// Parallel-build knobs. They are read once at the start of every
// BuildConflictGraph call; set them during initialization or from tests, not
// concurrently with scheduling.
var (
	// ConflictGraphParallelCutoff is the vertex count below which the graph
	// is built serially: for small request sets the inverted-index pass is
	// already cheap and goroutine fan-out only adds overhead.
	ConflictGraphParallelCutoff = 1024
	// ConflictGraphWorkers is the number of row-construction workers for
	// large graphs; 0 means runtime.GOMAXPROCS(0).
	ConflictGraphWorkers = 0
)

// conflictGraphWorkers resolves the effective worker count.
func conflictGraphWorkers() int {
	if ConflictGraphWorkers > 0 {
		return ConflictGraphWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// BuildConflictGraph constructs the conflict graph for pre-routed requests.
// Instead of testing all O(|R|^2) pairs directly, it builds an inverted
// index from each resource (directed link, source port, destination port) to
// the requests occupying it; every pair sharing a resource is adjacent.
//
// For graphs of at least ConflictGraphParallelCutoff vertices the adjacency
// rows are built by ConflictGraphWorkers goroutines, each owning a
// contiguous shard of rows so no two workers ever write the same word. The
// resulting graph is identical to the serial build: adjacency is a set, so
// row content does not depend on insertion order, and degrees are the
// row population counts either way.
func BuildConflictGraph(t network.Topology, paths []network.Path) *ConflictGraph {
	n := len(paths)
	words := (n + 63) / 64
	g := &ConflictGraph{n: n, rows: make([][]uint64, n), deg: make([]int, n)}
	flat := make([]uint64, n*words)
	for i := range g.rows {
		g.rows[i] = flat[i*words : (i+1)*words]
	}

	// Resource key space: links first, then source ports, then destination
	// ports.
	nl, nn := t.NumLinks(), t.NumNodes()
	byResource := make([][]int32, nl+2*nn)
	for i, p := range paths {
		for _, l := range p.Links {
			byResource[l] = append(byResource[l], int32(i))
		}
		byResource[nl+int(p.Src)] = append(byResource[nl+int(p.Src)], int32(i))
		byResource[nl+nn+int(p.Dst)] = append(byResource[nl+nn+int(p.Dst)], int32(i))
	}

	workers := conflictGraphWorkers()
	if n < ConflictGraphParallelCutoff || workers <= 1 {
		for _, users := range byResource {
			for a := 0; a < len(users); a++ {
				for b := a + 1; b < len(users); b++ {
					g.addEdge(int(users[a]), int(users[b]))
				}
			}
		}
		return g
	}

	// Sharded build: worker w constructs rows [lo, hi) by scanning each of
	// its vertices' resources and or-ing in that resource's other users.
	// Writes stay within the worker's own rows (and their deg entries), so
	// the shards share nothing; the double-visit of each edge (once from
	// each endpoint) is the price of lock-free symmetry.
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				row := g.rows[i]
				p := paths[i]
				mark := func(users []int32) {
					for _, j := range users {
						row[int(j)/64] |= 1 << uint(int(j)%64)
					}
				}
				for _, l := range p.Links {
					mark(byResource[l])
				}
				mark(byResource[nl+int(p.Src)])
				mark(byResource[nl+nn+int(p.Dst)])
				// The vertex saw itself through every one of its resources.
				row[i/64] &^= 1 << uint(i%64)
				d := 0
				for _, word := range row {
					d += bits.OnesCount64(word)
				}
				g.deg[i] = d
			}
		}(lo, hi)
	}
	wg.Wait()
	return g
}

func (g *ConflictGraph) addEdge(a, b int) {
	wa, ba := b/64, uint(b%64)
	if g.rows[a][wa]&(1<<ba) != 0 {
		return // already adjacent via another shared resource
	}
	g.rows[a][wa] |= 1 << ba
	g.rows[b][a/64] |= 1 << uint(a%64)
	g.deg[a]++
	g.deg[b]++
}

// Len returns the number of vertices.
func (g *ConflictGraph) Len() int { return g.n }

// Degree returns the degree of vertex i in the full graph.
func (g *ConflictGraph) Degree(i int) int { return g.deg[i] }

// Adjacent reports whether vertices i and j conflict.
func (g *ConflictGraph) Adjacent(i, j int) bool {
	return g.rows[i][j/64]&(1<<uint(j%64)) != 0
}

// Neighbors calls fn for every neighbor of vertex i.
func (g *ConflictGraph) Neighbors(i int, fn func(j int)) {
	for w, word := range g.rows[i] {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w*64 + b)
			word &^= 1 << uint(b)
		}
	}
}

// Words returns the number of 64-bit words per adjacency row, for callers
// that maintain vertex bitsets of their own.
func (g *ConflictGraph) Words() int { return (g.n + 63) / 64 }

// OrInto ors vertex i's adjacency row into dst, which must have Words()
// elements. It lets the coloring scheduler accumulate the set of vertices
// blocked by the configuration under construction in O(n/64) per insertion.
func (g *ConflictGraph) OrInto(dst []uint64, i int) {
	for w, word := range g.rows[i] {
		dst[w] |= word
	}
}

// AndInto intersects dst with vertex i's adjacency row.
func (g *ConflictGraph) AndInto(dst []uint64, i int) {
	for w, word := range g.rows[i] {
		dst[w] &= word
	}
}

// CountWithin returns the number of vertex i's neighbors inside the set.
func (g *ConflictGraph) CountWithin(set []uint64, i int) int {
	n := 0
	for w, word := range g.rows[i] {
		n += bits.OnesCount64(word & set[w])
	}
	return n
}

// Edges returns the total number of edges.
func (g *ConflictGraph) Edges() int {
	sum := 0
	for _, d := range g.deg {
		sum += d
	}
	return sum / 2
}

package schedule

import (
	"math/rand"

	"repro/internal/network"
	"repro/internal/request"
)

// IteratedGreedy exploits the paper's observation that compiled
// communication can spend compile time freely ("more time can be spent to
// obtain better runtime network utilization"): it runs the combined
// algorithm once and then greedy over many random permutations of the
// request set, keeping the best schedule found. Since greedy is
// order-sensitive (Fig. 3), random restarts explore schedules the fixed
// heuristics miss; the result is never worse than Combined.
type IteratedGreedy struct {
	// Restarts is the number of random permutations tried; zero means 32.
	Restarts int
	// Seed makes the search deterministic; the zero seed is valid.
	Seed int64
}

// Name implements Scheduler.
func (IteratedGreedy) Name() string { return "iterated-greedy" }

// Schedule implements Scheduler.
func (g IteratedGreedy) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	restarts := g.Restarts
	if restarts == 0 {
		restarts = 32
	}
	best, err := Combined{}.Schedule(t, reqs)
	if err != nil {
		return nil, err
	}
	paths, err := reqs.Routes(t)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(g.Seed))
	perm := make([]int, len(reqs))
	for i := range perm {
		perm[i] = i
	}
	shuffled := make(request.Set, len(reqs))
	shuffledPaths := make([]network.Path, len(reqs))
	for r := 0; r < restarts; r++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i, j := range perm {
			shuffled[i] = reqs[j]
			shuffledPaths[i] = paths[j]
		}
		configs := greedyPartition(t, shuffled, shuffledPaths)
		if len(configs) < best.Degree() {
			best = newResult("iterated-greedy(restart)", t, configs)
		}
	}
	return best, nil
}

package schedule

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
)

// This file adds guaranteed-bandwidth slot reservation to the scheduler
// core: a request set can be pinned to a fixed window of TDM slots inside
// a fixed-length frame, with background traffic scheduled into the
// complementary slots only. Because the frame length and the reserved
// window are constants of the reservation — not outputs of the compile —
// the reserved circuits occupy the same absolute slots of the same-length
// frame no matter what else is scheduled, which is what makes the reserved
// tenant's delivery times invariant under background load (the rate
// guarantee of the NoC-QoS literature, transplanted to compiled TDM).

// SlotWindow fixes a TDM frame length and a half-open reserved slot range
// [Lo, Hi) inside it.
type SlotWindow struct {
	// Frame is the total TDM frame length K the composed schedule runs at.
	Frame int
	// Lo and Hi bound the reserved slots: the reserved request set compiles
	// into slots Lo..Hi-1 and nothing else is ever placed there.
	Lo, Hi int
}

// Validate checks the window's internal consistency.
func (w SlotWindow) Validate() error {
	if w.Frame <= 0 {
		return fmt.Errorf("schedule: reservation frame %d is not positive", w.Frame)
	}
	if w.Lo < 0 || w.Hi > w.Frame || w.Lo >= w.Hi {
		return fmt.Errorf("schedule: reserved window [%d,%d) does not fit frame %d", w.Lo, w.Hi, w.Frame)
	}
	return nil
}

// Width returns the number of reserved slots.
func (w SlotWindow) Width() int { return w.Hi - w.Lo }

// ErrReservedOverflow is wrapped by ScheduleReserved when the reserved
// request set needs more slots than the window offers: the reservation is
// an admission contract, so an unsatisfiable one is rejected rather than
// silently widened.
var ErrReservedOverflow = fmt.Errorf("schedule: reserved pattern exceeds its slot window")

// ErrBackgroundOverflow is wrapped by ScheduleReserved when the background
// request set needs more slots than the frame has left outside the window.
// Callers pick a longer frame or shed background load; growing the frame
// implicitly would change the reserved tenant's delivery times, which is
// exactly what the reservation forbids.
var ErrBackgroundOverflow = fmt.Errorf("schedule: background load exceeds the free slots of the frame")

// ScheduleReserved composes a fixed-frame schedule honoring a slot
// reservation: reserved compiles (with s) into the window's slots,
// background into the slots outside the window, and the result always has
// exactly w.Frame configurations — empty slots stay empty rather than
// being compacted away. Configuration k of the result is established in
// TDM slot k of every frame, so the reserved circuits' absolute slot
// positions, and with them every reserved message's delivery time under
// sim.RunCompiled, are independent of the background set (including an
// empty one, the solo baseline).
//
// Both request sets are scheduled independently, so a (src,dst) pair may
// appear in both; the two circuits simply occupy different slots.
func ScheduleReserved(t network.Topology, s Scheduler, reserved, background request.Set, w SlotWindow) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(reserved) == 0 {
		return nil, fmt.Errorf("schedule: empty reserved request set")
	}
	resR, err := s.Schedule(t, reserved)
	if err != nil {
		return nil, fmt.Errorf("schedule: reserved set: %w", err)
	}
	if resR.Degree() > w.Width() {
		return nil, fmt.Errorf("%w: needs %d slots, window [%d,%d) has %d",
			ErrReservedOverflow, resR.Degree(), w.Lo, w.Hi, w.Width())
	}
	var resB *Result
	if len(background) > 0 {
		resB, err = s.Schedule(t, background)
		if err != nil {
			return nil, fmt.Errorf("schedule: background set: %w", err)
		}
		if resB.Degree() > w.Frame-w.Width() {
			return nil, fmt.Errorf("%w: needs %d slots, frame %d has %d free",
				ErrBackgroundOverflow, resB.Degree(), w.Frame, w.Frame-w.Width())
		}
	}

	configs := make([]request.Set, w.Frame)
	slot := make(map[request.Request]int, len(reserved)+len(background))
	if resB != nil {
		// Free slots in ascending order: 0..Lo-1 then Hi..Frame-1. The
		// background schedule's own config order is preserved, so its
		// placement is as deterministic as the underlying scheduler.
		k := 0
		for _, c := range resB.Configs {
			for k == w.Lo {
				k = w.Hi
			}
			configs[k] = c
			for _, q := range c {
				slot[q] = k
			}
			k++
		}
	}
	// Reserved entries written last: a pair scheduled in both sets resolves
	// to its reserved slot in the merged index, so the simulator drives the
	// reserved circuit — the one whose timing is guaranteed.
	for i, c := range resR.Configs {
		k := w.Lo + i
		configs[k] = c
		for _, q := range c {
			slot[q] = k
		}
	}
	return &Result{
		Algorithm: s.Name() + "+reserved",
		Topology:  t,
		Configs:   configs,
		Slot:      slot,
	}, nil
}

// ValidateReserved proves a composed reservation schedule correct: the
// frame has exactly w.Frame slots, every reserved request holds a slot
// inside the window, every background request one outside it, no slot
// holds conflicting circuits, and nothing else is scheduled. It is the
// reservation counterpart of Result.Validate (which rejects the empty
// configurations a fixed frame legitimately contains).
func ValidateReserved(r *Result, reserved, background request.Set, w SlotWindow) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if len(r.Configs) != w.Frame {
		return fmt.Errorf("schedule: reserved result has %d slots, frame is %d", len(r.Configs), w.Frame)
	}
	inWindow := make(map[request.Request]int)
	outside := make(map[request.Request]int)
	total := 0
	for k, c := range r.Configs {
		occ := network.NewOccupancy()
		for _, q := range c {
			p, err := network.CachedRoute(r.Topology, q.Src, q.Dst)
			if err != nil {
				return fmt.Errorf("schedule: reserved config %d request %v: %w", k, q, err)
			}
			if !occ.CanAdd(p) {
				return fmt.Errorf("schedule: reserved config %d has conflicting request %v", k, q)
			}
			occ.Add(p)
			if k >= w.Lo && k < w.Hi {
				inWindow[q]++
			} else {
				outside[q]++
			}
			total++
		}
	}
	check := func(want request.Set, got map[request.Request]int, where string) error {
		need := make(map[request.Request]int, len(want))
		for _, q := range want {
			need[q]++
		}
		for q, n := range need {
			if got[q] != n {
				return fmt.Errorf("schedule: request %v scheduled %d times %s, want %d", q, got[q], where, n)
			}
		}
		for q, n := range got {
			if need[q] != n {
				return fmt.Errorf("schedule: extraneous request %v scheduled %d times %s", q, n, where)
			}
		}
		return nil
	}
	if err := check(reserved, inWindow, "inside the reserved window"); err != nil {
		return err
	}
	if err := check(background, outside, "outside the reserved window"); err != nil {
		return err
	}
	if total != len(reserved)+len(background) {
		return fmt.Errorf("schedule: reserved result carries %d requests, want %d", total, len(reserved)+len(background))
	}
	return nil
}

package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// TestColoringBeatsGreedyOnRandomPatterns reproduces the paper's central
// Table 1 relationship: averaged over random patterns, the coloring
// algorithm needs a smaller multiplexing degree than greedy.
func TestColoringBeatsGreedyOnRandomPatterns(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(1996))
	const trials = 12
	for _, n := range []int{100, 400, 1200, 2400} {
		sumG, sumC := 0, 0
		for i := 0; i < trials; i++ {
			set, err := patterns.Random(rng, 64, n)
			if err != nil {
				t.Fatal(err)
			}
			g, err := schedule.Greedy{}.Schedule(torus, set)
			if err != nil {
				t.Fatal(err)
			}
			c, err := schedule.Coloring{}.Schedule(torus, set)
			if err != nil {
				t.Fatal(err)
			}
			sumG += g.Degree()
			sumC += c.Degree()
		}
		if sumC >= sumG {
			t.Errorf("n=%d: coloring average %.1f not below greedy %.1f",
				n, float64(sumC)/trials, float64(sumG)/trials)
		}
	}
}

func TestColoringOnFigure3Instance(t *testing.T) {
	lin := topology.NewLinear(5)
	reqs := request.Set{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}, {Src: 2, Dst: 4}}
	res, err := schedule.Coloring{}.Schedule(lin, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 2 {
		t.Errorf("coloring degree = %d, want the optimal 2", res.Degree())
	}
}

func TestColoringIndependentRequestsOneSlot(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// Pairwise disjoint one-hop requests in distinct rows.
	reqs := request.Set{}
	for r := 0; r < 8; r++ {
		reqs = append(reqs, request.Request{
			Src: torus.Node(r, 0), Dst: torus.Node(r, 1),
		})
	}
	res, err := schedule.Coloring{}.Schedule(torus, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 1 {
		t.Errorf("degree = %d, want 1 for conflict-free requests", res.Degree())
	}
}

func TestColoringCustomPriorityIsUsed(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(3))
	set, err := patterns.Random(rng, 64, 600)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	c := schedule.Coloring{Priority: func(l, d int) float64 {
		calls++
		return float64(d)
	}}
	res, err := c.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(set); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("custom priority function never called")
	}
}

func TestPaperRatioPriority(t *testing.T) {
	// Zero remaining conflicts dominates everything.
	if schedule.PaperRatioPriority(1, 0) <= schedule.PaperRatioPriority(100, 1) {
		t.Error("conflict-free vertex must outrank conflicted ones")
	}
	// Fewer conflicts outrank more conflicts at equal length.
	if schedule.PaperRatioPriority(4, 2) <= schedule.PaperRatioPriority(4, 8) {
		t.Error("fewer conflicts must yield higher priority")
	}
	// Longer connections outrank shorter ones at equal conflicts.
	if schedule.PaperRatioPriority(6, 3) <= schedule.PaperRatioPriority(2, 3) {
		t.Error("longer connection must yield higher priority")
	}
}

func TestConflictGraphMatchesPairwiseConflicts(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	rng := rand.New(rand.NewSource(11))
	set, err := patterns.Random(rng, 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := set.Routes(torus)
	if err != nil {
		t.Fatal(err)
	}
	g := schedule.BuildConflictGraph(torus, paths)
	if g.Len() != len(set) {
		t.Fatalf("graph has %d vertices, want %d", g.Len(), len(set))
	}
	edges := 0
	for i := range paths {
		deg := 0
		for j := range paths {
			if i == j {
				continue
			}
			want := network.Conflicts(paths[i], paths[j])
			if g.Adjacent(i, j) != want {
				t.Fatalf("Adjacent(%d,%d) = %v, want %v", i, j, g.Adjacent(i, j), want)
			}
			if want {
				deg++
			}
		}
		if g.Degree(i) != deg {
			t.Fatalf("Degree(%d) = %d, want %d", i, g.Degree(i), deg)
		}
		edges += deg
		// Neighbors enumerates exactly the adjacent vertices.
		seen := map[int]bool{}
		g.Neighbors(i, func(j int) { seen[j] = true })
		if len(seen) != deg {
			t.Fatalf("Neighbors(%d) visited %d vertices, want %d", i, len(seen), deg)
		}
	}
	if g.Edges() != edges/2 {
		t.Fatalf("Edges() = %d, want %d", g.Edges(), edges/2)
	}
}

func TestConflictGraphOrInto(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	set := patterns.Ring(16)
	paths, err := set.Routes(torus)
	if err != nil {
		t.Fatal(err)
	}
	g := schedule.BuildConflictGraph(torus, paths)
	dst := make([]uint64, g.Words())
	g.OrInto(dst, 0)
	g.OrInto(dst, 1)
	for j := 0; j < g.Len(); j++ {
		got := dst[j/64]&(1<<uint(j%64)) != 0
		want := g.Adjacent(0, j) || g.Adjacent(1, j)
		if got != want {
			t.Fatalf("OrInto bit %d = %v, want %v", j, got, want)
		}
	}
}

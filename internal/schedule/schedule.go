// Package schedule implements the paper's off-line connection-scheduling
// algorithms — the core contribution of "Compiled Communication for
// All-Optical TDM Networks" (SC'96).
//
// Given a topology and a set of connection requests, a Scheduler partitions
// the requests into configurations: sets of connections that can be
// established simultaneously because no two of them conflict. The number of
// configurations equals the TDM multiplexing degree required to satisfy the
// request set, which the compiler seeks to minimize since communication time
// in a multiplexed network is proportional to the multiplexing degree.
//
// Four schedulers are provided, mirroring the paper:
//
//   - Greedy        — Fig. 2, first-fit in request order.
//   - Coloring      — Fig. 4, conflict-graph coloring with dynamic
//     fewest-conflicts-first priorities.
//   - OrderedAAPC   — Fig. 5, reorder by ranked all-to-all phases + greedy.
//   - Combined      — best of Coloring and OrderedAAPC (used by the
//     compiler in the paper's simulation study).
package schedule

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
)

// Result is a complete connection schedule: a partition of the request set
// into conflict-free configurations, one per TDM time slot.
type Result struct {
	// Algorithm is the name of the scheduler that produced the result.
	Algorithm string
	// Topology the schedule was computed for.
	Topology network.Topology
	// Configs partitions the requests; Configs[k] is established during
	// time slot k of every TDM frame.
	Configs []request.Set
	// Slot maps each request to the index of its configuration.
	Slot map[request.Request]int
}

// Degree returns the multiplexing degree of the schedule (the number of
// configurations, K in the paper).
func (r *Result) Degree() int { return len(r.Configs) }

// NumRequests returns the total number of scheduled connections.
func (r *Result) NumRequests() int {
	n := 0
	for _, c := range r.Configs {
		n += len(c)
	}
	return n
}

// newResult assembles a Result and its slot index from configurations.
func newResult(alg string, t network.Topology, configs []request.Set) *Result {
	slot := make(map[request.Request]int)
	for k, c := range configs {
		for _, req := range c {
			slot[req] = k
		}
	}
	return &Result{Algorithm: alg, Topology: t, Configs: configs, Slot: slot}
}

// Validate checks that the schedule is correct: every request of the
// original set appears in exactly one configuration, no configuration is
// empty, and no two connections within a configuration conflict.
func (r *Result) Validate(reqs request.Set) error {
	want := make(map[request.Request]int, len(reqs))
	for _, q := range reqs {
		want[q]++
	}
	got := make(map[request.Request]int, len(reqs))
	for k, c := range r.Configs {
		if len(c) == 0 {
			return fmt.Errorf("schedule: configuration %d is empty", k)
		}
		occ := network.NewOccupancy()
		for _, q := range c {
			p, err := network.CachedRoute(r.Topology, q.Src, q.Dst)
			if err != nil {
				return fmt.Errorf("schedule: config %d request %v: %w", k, q, err)
			}
			if !occ.CanAdd(p) {
				return fmt.Errorf("schedule: config %d has conflicting request %v", k, q)
			}
			occ.Add(p)
			got[q]++
		}
	}
	for q, n := range want {
		if got[q] != n {
			return fmt.Errorf("schedule: request %v scheduled %d times, want %d", q, got[q], n)
		}
	}
	for q, n := range got {
		if want[q] != n {
			return fmt.Errorf("schedule: extraneous request %v scheduled %d times", q, n)
		}
	}
	return nil
}

// Scheduler computes a minimal (heuristic) configuration set for a request
// set on a topology.
type Scheduler interface {
	// Name identifies the algorithm ("greedy", "coloring", ...).
	Name() string
	// Schedule partitions reqs into conflict-free configurations.
	Schedule(t network.Topology, reqs request.Set) (*Result, error)
}

// LowerBound returns a lower bound on the multiplexing degree of any
// schedule for the request set: the maximum over (a) the load of any
// directed link, (b) the number of requests sharing a source (PE injection
// port), and (c) the number sharing a destination (PE ejection port). The
// load counters come from the pooled compile arena, so repeated bounds (the
// delta recompiler's quality gate evaluates one per patch) do not allocate.
func LowerBound(t network.Topology, reqs request.Set) (int, error) {
	st := statePool.Get().(*CompileState)
	defer statePool.Put(st)
	return st.lowerBound(t, reqs)
}

package schedule_test

import (
	"testing"

	"repro/internal/schedule"
)

func TestParseScheduler(t *testing.T) {
	for name, want := range map[string]string{
		"":             "combined",
		"combined":     "combined",
		"combined-seq": "combined",
		"greedy":       "greedy",
		"coloring":     "coloring",
		"aapc":         "aapc",
		"exact":        "exact",
	} {
		sch, err := schedule.ParseScheduler(name)
		if err != nil {
			t.Fatalf("ParseScheduler(%q): %v", name, err)
		}
		if sch.Name() != want {
			t.Fatalf("ParseScheduler(%q).Name() = %q, want %q", name, sch.Name(), want)
		}
	}
	if _, err := schedule.ParseScheduler("nope"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if c, _ := schedule.ParseScheduler("combined-seq"); !c.(schedule.Combined).Sequential {
		t.Fatal("combined-seq not sequential")
	}
}

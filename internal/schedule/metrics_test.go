package schedule_test

import (
	"strings"
	"testing"

	"repro/internal/patterns"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestMetricsAllToAll(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res, err := schedule.OrderedAAPC{}.Schedule(torus, patterns.AllToAll(64))
	if err != nil {
		t.Fatal(err)
	}
	m, err := schedule.ComputeMetrics(res)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree != 64 || m.Requests != 4032 {
		t.Fatalf("degree=%d requests=%d", m.Degree, m.Requests)
	}
	if m.MeanOccupancy != 63.0 {
		t.Errorf("mean occupancy = %f, want 63 (4032/64)", m.MeanOccupancy)
	}
	// The tight decomposition fills ~98% of link-slots (lower bound 63/64).
	if m.LinkUtilization < 0.95 {
		t.Errorf("link utilization %.2f, want near 1 for the tight AAPC schedule", m.LinkUtilization)
	}
	if m.LowerBound != 64 || m.Slack() != 0 {
		t.Errorf("lower bound %d slack %d; the all-to-all schedule is provably optimal", m.LowerBound, m.Slack())
	}
	if !strings.Contains(m.String(), "degree=64") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMetricsSparsePattern(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res, err := schedule.Combined{}.Schedule(torus, patterns.Ring(64))
	if err != nil {
		t.Fatal(err)
	}
	m, err := schedule.ComputeMetrics(res)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree != 2 || m.Requests != 128 {
		t.Fatalf("degree=%d requests=%d", m.Degree, m.Requests)
	}
	if m.PortUtilization != 1.0 {
		t.Errorf("port utilization = %f; every PE injects in both slots of the ring schedule", m.PortUtilization)
	}
	hist := m.OccupancyHistogram()
	if len(hist) != 2 || hist[0] < hist[1] {
		t.Errorf("occupancy histogram %v not sorted descending", hist)
	}
}

func TestMetricsEmptySchedule(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	res, err := schedule.Greedy{}.Schedule(torus, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := schedule.ComputeMetrics(res)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree != 0 || m.Requests != 0 {
		t.Errorf("empty metrics %+v", m)
	}
}

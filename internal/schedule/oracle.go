package schedule

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/network"
	"repro/internal/request"
)

// This file preserves the pre-bitset, map-based scheduler core as a
// differential-testing oracle, the same retention policy PR 2 applied to
// the simulator: when a hot path is rewritten for speed, the readable
// original stays behind as the executable specification the rewrite is
// compared against. The oracles use network.Occupancy (hash sets keyed by
// resource) and the O(|R|^2) pairwise conflict scan; they share none of the
// bitset machinery. Each oracle reports the same Name and produces the same
// Result.Algorithm as its production counterpart, so results from the two
// cores must be byte-identical under any deterministic encoding — exactly
// what the differential suite asserts.
//
// The oracles are exported for tests but are real Schedulers; nothing stops
// a caller that values simplicity over speed from using them.

// OracleConflictGraph builds the conflict graph by testing every request
// pair with network.Conflicts — the direct transcription of the conflict
// definition, with no inverted index and no bitset sweep. It is the oracle
// for BuildConflictGraph (see FuzzBitsetGraph).
func OracleConflictGraph(paths []network.Path) *ConflictGraph {
	n := len(paths)
	words := (n + 63) / 64
	g := &ConflictGraph{n: n, rows: make([][]uint64, n), deg: make([]int, n)}
	flat := make([]uint64, n*words)
	for i := range g.rows {
		g.rows[i] = flat[i*words : (i+1)*words]
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if network.Conflicts(paths[a], paths[b]) {
				g.rows[a][b/64] |= 1 << uint(b%64)
				g.rows[b][a/64] |= 1 << uint(a%64)
				g.deg[a]++
				g.deg[b]++
			}
		}
	}
	return g
}

// oracleGreedyPartition is the map-based Fig. 2 loop: one hash-set
// occupancy, reset per configuration.
func oracleGreedyPartition(reqs request.Set, paths []network.Path) []request.Set {
	remaining := make([]int, len(reqs))
	for i := range remaining {
		remaining[i] = i
	}
	var configs []request.Set
	occ := network.NewOccupancy()
	for len(remaining) > 0 {
		occ.Reset()
		var config request.Set
		rest := remaining[:0]
		for _, i := range remaining {
			if occ.CanAdd(paths[i]) {
				occ.Add(paths[i])
				config = append(config, reqs[i])
			} else {
				rest = append(rest, i)
			}
		}
		remaining = rest
		configs = append(configs, config)
	}
	return configs
}

// OracleGreedy is the map-based original of Greedy.
type OracleGreedy struct{}

// Name implements Scheduler.
func (OracleGreedy) Name() string { return "greedy" }

// Schedule implements Scheduler.
func (OracleGreedy) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	paths, err := reqs.Routes(t)
	if err != nil {
		return nil, err
	}
	return newResult("greedy", t, oracleGreedyPartition(reqs, paths)), nil
}

// OracleColoring is the original of Coloring: same Fig. 4 algorithm, same
// priorities, but running on the pairwise-built conflict graph with
// per-call scratch allocation.
type OracleColoring struct {
	// Priority mirrors Coloring.Priority.
	Priority func(pathLen, uncoloredDeg int) float64
}

// Name implements Scheduler.
func (OracleColoring) Name() string { return "coloring" }

// Schedule implements Scheduler.
func (c OracleColoring) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	paths, err := reqs.Routes(t)
	if err != nil {
		return nil, err
	}
	g := OracleConflictGraph(paths)
	n := g.Len()

	uncoloredDeg := make([]int, n)
	for i := 0; i < n; i++ {
		uncoloredDeg[i] = g.Degree(i)
	}
	colored := make([]bool, n)
	var configs []request.Set
	blocked := make([]uint64, g.Words())
	for remaining := n; remaining > 0; {
		// Order the uncolored vertices by current priority, ties broken by
		// ascending id — a plain stable comparison sort, with no counting
		// shortcut.
		var cand []int
		for v := 0; v < n; v++ {
			if !colored[v] {
				cand = append(cand, v)
			}
		}
		prio := func(v int) float64 {
			if c.Priority != nil {
				return c.Priority(paths[v].Len(), uncoloredDeg[v])
			}
			return float64(uncoloredDeg[v])
		}
		sort.SliceStable(cand, func(a, b int) bool { return prio(cand[a]) > prio(cand[b]) })

		var config request.Set
		var inConfig []int
		clear(blocked)
		for _, v := range cand {
			if blocked[v/64]&(1<<uint(v%64)) != 0 {
				continue
			}
			inConfig = append(inConfig, v)
			config = append(config, reqs[v])
			colored[v] = true
			g.OrInto(blocked, v)
		}
		for _, v := range inConfig {
			g.Neighbors(v, func(u int) {
				if !colored[u] {
					uncoloredDeg[u]--
				}
			})
		}
		remaining -= len(inConfig)
		configs = append(configs, config)
	}
	return newResult("coloring", t, configs), nil
}

// OracleOrderedAAPC is the original of OrderedAAPC: rank phases with a
// stable comparison sort, reorder with freshly allocated buffers, and run
// the map-based greedy loop.
type OracleOrderedAAPC struct {
	// DisableRanking mirrors OrderedAAPC.DisableRanking.
	DisableRanking bool
}

// Name implements Scheduler.
func (OracleOrderedAAPC) Name() string { return "aapc" }

// Schedule implements Scheduler.
func (o OracleOrderedAAPC) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	set, err := DecompositionFor(t)
	if err != nil {
		return nil, err
	}
	paths, err := reqs.Routes(t)
	if err != nil {
		return nil, err
	}
	rank := make([]int, set.NumPhases())
	phase := make([]int, len(reqs))
	for i, r := range reqs {
		k, ok := set.PhaseOf(r)
		if !ok {
			return nil, fmt.Errorf("schedule: request %v not in AAPC decomposition of %s", r, t.Name())
		}
		phase[i] = k
		rank[k] += paths[i].Len()
	}
	order := make([]int, set.NumPhases())
	for i := range order {
		order[i] = i
	}
	if !o.DisableRanking {
		sort.SliceStable(order, func(a, b int) bool { return rank[order[a]] > rank[order[b]] })
	}
	pos := make([]int, set.NumPhases())
	for i, k := range order {
		pos[k] = i
	}
	type item struct {
		req  request.Request
		path network.Path
		pos  int
		idx  int
	}
	items := make([]item, len(reqs))
	for i := range reqs {
		items[i] = item{reqs[i], paths[i], pos[phase[i]], i}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].pos < items[b].pos })
	reordered := make(request.Set, len(reqs))
	rpaths := make([]network.Path, len(reqs))
	for i, it := range items {
		reordered[i] = it.req
		rpaths[i] = it.path
	}
	return newResult("aapc", t, oracleGreedyPartition(reordered, rpaths)), nil
}

// OracleCombined is the original of Combined, racing the two map-based
// members with the same deterministic selection and error rules.
type OracleCombined struct {
	// Sequential mirrors Combined.Sequential.
	Sequential bool
}

// Name implements Scheduler.
func (OracleCombined) Name() string { return "combined" }

// Schedule implements Scheduler.
func (c OracleCombined) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	if network.TerminalCount(t) > AAPCTerminalCutoff {
		col, err := OracleColoring{}.Schedule(t, reqs)
		if err != nil {
			return nil, err
		}
		return &Result{
			Algorithm: "combined(" + col.Algorithm + ")",
			Topology:  col.Topology,
			Configs:   col.Configs,
			Slot:      col.Slot,
		}, nil
	}
	var col, ap *Result
	var colErr, apErr error
	if c.Sequential {
		col, colErr = OracleColoring{}.Schedule(t, reqs)
		if colErr != nil {
			return nil, colErr
		}
		ap, apErr = OracleOrderedAAPC{}.Schedule(t, reqs)
	} else {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			ap, apErr = OracleOrderedAAPC{}.Schedule(t, reqs)
		}()
		col, colErr = OracleColoring{}.Schedule(t, reqs)
		wg.Wait()
	}
	if colErr != nil {
		return nil, colErr
	}
	if apErr != nil {
		return nil, apErr
	}
	best := col
	if ap.Degree() < col.Degree() {
		best = ap
	}
	return &Result{
		Algorithm: "combined(" + best.Algorithm + ")",
		Topology:  best.Topology,
		Configs:   best.Configs,
		Slot:      best.Slot,
	}, nil
}

// OracleExtend is the original of Extend: clone every configuration,
// rebuild a map occupancy per slot, and first-fit the extras.
func OracleExtend(r *Result, extra request.Set) (*Result, error) {
	if err := extra.Validate(r.Topology); err != nil {
		return nil, err
	}
	configs := make([]request.Set, r.Degree())
	occs := make([]*network.Occupancy, r.Degree())
	for k, cfg := range r.Configs {
		configs[k] = cfg.Clone()
		occs[k] = network.NewOccupancy()
		for _, req := range cfg {
			p, err := network.CachedRoute(r.Topology, req.Src, req.Dst)
			if err != nil {
				return nil, fmt.Errorf("schedule: extend: %w", err)
			}
			occs[k].Add(p)
		}
	}
	for _, req := range extra {
		p, err := network.CachedRoute(r.Topology, req.Src, req.Dst)
		if err != nil {
			return nil, fmt.Errorf("schedule: extend: %w", err)
		}
		placed := false
		for k := range configs {
			if occs[k].CanAdd(p) {
				occs[k].Add(p)
				configs[k] = append(configs[k], req)
				placed = true
				break
			}
		}
		if !placed {
			occ := network.NewOccupancy()
			occ.Add(p)
			occs = append(occs, occ)
			configs = append(configs, request.Set{req})
		}
	}
	return newResult(r.Algorithm+"+extend", r.Topology, configs), nil
}

package schedule

import (
	"sync"

	"repro/internal/network"
	"repro/internal/request"
)

// Combined runs both the coloring and the ordered-AAPC schedulers and keeps
// whichever produces the smaller multiplexing degree. The paper's compiler
// uses this algorithm in the simulation study: compiled communication can
// afford to spend extra compile time for better runtime network utilization.
//
// By default the two member schedulers run concurrently, racing on separate
// goroutines; they are pure functions of (topology, requests), so the only
// shared state is the concurrency-safe route and decomposition caches. The
// result is bit-identical to the sequential execution: the same schedules
// are computed either way, and the winner is chosen by the same
// deterministic rule — coloring wins ties, ordered AAPC must be strictly
// better to be selected. Errors are equally deterministic: a coloring error
// is reported first, exactly as in sequential order, regardless of which
// goroutine failed first in wall-clock time.
type Combined struct {
	coloring Coloring
	aapc     OrderedAAPC
	// Sequential disables the two-goroutine fan-out and runs the member
	// schedulers one after the other. Output is identical either way; the
	// knob exists for the differential determinism tests, single-core
	// deployments, and callers that already saturate every core with
	// pattern-level parallelism.
	Sequential bool
}

// Name implements Scheduler.
func (Combined) Name() string { return "combined" }

// Schedule implements Scheduler.
func (c Combined) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	var col, ap *Result
	var colErr, apErr error
	if c.Sequential {
		col, colErr = c.coloring.Schedule(t, reqs)
		if colErr != nil {
			return nil, colErr
		}
		ap, apErr = c.aapc.Schedule(t, reqs)
	} else {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			ap, apErr = c.aapc.Schedule(t, reqs)
		}()
		col, colErr = c.coloring.Schedule(t, reqs)
		wg.Wait()
	}
	// Deterministic error order: coloring first, mirroring the sequential
	// control flow.
	if colErr != nil {
		return nil, colErr
	}
	if apErr != nil {
		return nil, apErr
	}
	best := col
	if ap.Degree() < col.Degree() {
		best = ap
	}
	return &Result{
		Algorithm: "combined(" + best.Algorithm + ")",
		Topology:  best.Topology,
		Configs:   best.Configs,
		Slot:      best.Slot,
	}, nil
}

package schedule

import (
	"repro/internal/network"
	"repro/internal/request"
)

// Combined runs both the coloring and the ordered-AAPC schedulers and keeps
// whichever produces the smaller multiplexing degree. The paper's compiler
// uses this algorithm in the simulation study: compiled communication can
// afford to spend extra compile time for better runtime network utilization.
type Combined struct {
	coloring Coloring
	aapc     OrderedAAPC
}

// Name implements Scheduler.
func (Combined) Name() string { return "combined" }

// Schedule implements Scheduler.
func (c Combined) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	col, err := c.coloring.Schedule(t, reqs)
	if err != nil {
		return nil, err
	}
	ap, err := c.aapc.Schedule(t, reqs)
	if err != nil {
		return nil, err
	}
	best := col
	if ap.Degree() < col.Degree() {
		best = ap
	}
	return &Result{
		Algorithm: "combined(" + best.Algorithm + ")",
		Topology:  best.Topology,
		Configs:   best.Configs,
		Slot:      best.Slot,
	}, nil
}

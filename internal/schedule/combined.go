package schedule

import (
	"runtime"
	"sync"

	"repro/internal/network"
	"repro/internal/request"
)

// Combined runs both the coloring and the ordered-AAPC schedulers and keeps
// whichever produces the smaller multiplexing degree. The paper's compiler
// uses this algorithm in the simulation study: compiled communication can
// afford to spend extra compile time for better runtime network utilization.
//
// By default the two member schedulers run concurrently, racing on separate
// goroutines; they are pure functions of (topology, requests), so the only
// shared state is the concurrency-safe route and decomposition caches. The
// result is bit-identical to the sequential execution: the same schedules
// are computed either way, and the winner is chosen by the same
// deterministic rule — coloring wins ties, ordered AAPC must be strictly
// better to be selected. Errors are equally deterministic: a coloring error
// is reported first, exactly as in sequential order, regardless of which
// goroutine failed first in wall-clock time. On a single-core runtime
// (GOMAXPROCS=1) the race is pure overhead, so the members run sequentially
// there regardless of the knob.
type Combined struct {
	coloring Coloring
	aapc     OrderedAAPC
	// Sequential disables the two-goroutine fan-out and runs the member
	// schedulers one after the other. Output is identical either way; the
	// knob exists for the differential determinism tests, single-core
	// deployments, and callers that already saturate every core with
	// pattern-level parallelism.
	Sequential bool
}

// Name implements Scheduler.
func (Combined) Name() string { return "combined" }

// Precomputed winner names keep the steady-state compile path free of
// string concatenation.
const (
	combinedColoringName = "combined(coloring)"
	combinedAAPCName     = "combined(aapc)"
)

// AAPCTerminalCutoff is the largest terminal count at which Combined still
// runs its ordered-AAPC member. The AAPC scheduler needs a one-time
// all-to-all decomposition of the topology — an O(N^2 x phases) first-fit
// packing that takes minutes past a few hundred terminals and hours at a
// few thousand — and its dense-pattern degree bound (~N^3/8 phases on a
// torus) never beats coloring at those scales anyway. Above the cutoff
// Combined is its coloring member alone; OracleCombined applies the same
// rule so the differential suite's byte-identity holds at every size. The
// paper's own workloads (the 8x8 torus, 64 terminals) sit far below the
// cutoff. Exported as a variable for tests and for callers who want the
// full race on mid-sized fabrics regardless of compile time.
var AAPCTerminalCutoff = 256

// Schedule implements Scheduler.
func (c Combined) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	return pooledSchedule(c, t, reqs)
}

func (c Combined) scheduleInto(st *CompileState, t network.Topology, reqs request.Set) (*Result, error) {
	if st.aux == nil {
		st.aux = NewCompileState()
	}
	if network.TerminalCount(t) > AAPCTerminalCutoff {
		col, err := c.coloring.scheduleInto(st, t, reqs)
		if err != nil {
			return nil, err
		}
		col.Algorithm = combinedColoringName
		return col, nil
	}
	var col, ap *Result
	var colErr, apErr error
	if c.Sequential || runtime.GOMAXPROCS(0) == 1 {
		col, colErr = c.coloring.scheduleInto(st, t, reqs)
		if colErr != nil {
			return nil, colErr
		}
		ap, apErr = c.aapc.scheduleInto(st.aux, t, reqs)
	} else {
		col, colErr, ap, apErr = c.race(st, t, reqs)
	}
	// Deterministic error order: coloring first, mirroring the sequential
	// control flow.
	if colErr != nil {
		return nil, colErr
	}
	if apErr != nil {
		return nil, apErr
	}
	best, name := col, combinedColoringName
	if ap.Degree() < col.Degree() {
		best, name = ap, combinedAAPCName
	}
	best.Algorithm = name
	return best, nil
}

// race fans the two members out on separate goroutines. It lives outside
// scheduleInto so the closure's captures don't force the sequential path's
// locals onto the heap — the single-core compile stays allocation-free.
func (c Combined) race(st *CompileState, t network.Topology, reqs request.Set) (col *Result, colErr error, ap *Result, apErr error) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ap, apErr = c.aapc.scheduleInto(st.aux, t, reqs)
	}()
	col, colErr = c.coloring.scheduleInto(st, t, reqs)
	wg.Wait()
	return
}

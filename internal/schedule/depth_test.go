package schedule_test

import (
	"testing"

	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestSplitByDepthCoversAllRequests(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	res, err := schedule.OrderedAAPC{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := schedule.SplitByDepth(res, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 7 { // ceil(64/10)
		t.Fatalf("got %d sub-phases, want 7", len(subs))
	}
	seen := map[request.Request]int{}
	for i, sub := range subs {
		if sub.Degree() > 10 {
			t.Fatalf("sub-phase %d has degree %d > 10", i, sub.Degree())
		}
		// Each sub-phase must be valid for its own request subset.
		var own request.Set
		for _, cfg := range sub.Configs {
			own = append(own, cfg...)
		}
		if err := sub.Validate(own); err != nil {
			t.Fatalf("sub-phase %d: %v", i, err)
		}
		for _, r := range own {
			seen[r]++
		}
	}
	if len(seen) != len(set) {
		t.Fatalf("sub-phases cover %d requests, want %d", len(seen), len(set))
	}
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("request %v appears %d times across sub-phases", r, c)
		}
	}
}

func TestSplitByDepthNoSplitNeeded(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res, err := schedule.Combined{}.Schedule(torus, patterns.Ring(64))
	if err != nil {
		t.Fatal(err)
	}
	subs, err := schedule.SplitByDepth(res, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Degree() != res.Degree() {
		t.Errorf("expected a single untouched sub-phase, got %d", len(subs))
	}
}

func TestSplitByDepthErrors(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res, err := schedule.Combined{}.Schedule(torus, patterns.Ring(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.SplitByDepth(res, 0); err == nil {
		t.Error("zero depth accepted")
	}
	empty, err := schedule.Greedy{}.Schedule(torus, nil)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := schedule.SplitByDepth(empty, 4)
	if err != nil || subs != nil {
		t.Error("empty schedule should split into nothing")
	}
}

package schedule

import (
	"sort"

	"repro/internal/request"
)

// OptimizeSlotOrder permutes a schedule's configurations within the TDM
// frame so that configurations carrying the longest messages occupy the
// earliest slots. Which slot a circuit lands in does not affect schedule
// validity — configurations are independent — but it adds the slot index to
// every message's completion time (finish = slot + 1 + (flits-1)*K), so
// putting the critical-path messages first shaves up to K-1 slots off the
// phase. flits maps each request to its message length; requests without an
// entry count as one flit.
//
// The returned schedule shares the input's configurations (re-sliced, not
// copied); the input Result is not modified.
func OptimizeSlotOrder(r *Result, flits map[request.Request]int) *Result {
	k := r.Degree()
	if k <= 1 {
		return r
	}
	longest := make([]int, k)
	for slot, cfg := range r.Configs {
		for _, req := range cfg {
			f := flits[req]
			if f < 1 {
				f = 1
			}
			if f > longest[slot] {
				longest[slot] = f
			}
		}
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return longest[order[a]] > longest[order[b]] })

	configs := make([]request.Set, k)
	for newSlot, oldSlot := range order {
		configs[newSlot] = r.Configs[oldSlot]
	}
	return newResult(r.Algorithm+"+slot-order", r.Topology, configs)
}

package schedule

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
)

// Exact finds a schedule with the provably minimum multiplexing degree by
// branch-and-bound over configuration assignments. It is exponential and
// intended only for small request sets — validating the heuristics (the
// Fig. 3 example where greedy uses 3 slots but 2 suffice) and measuring
// heuristic optimality gaps in tests.
type Exact struct {
	// MaxRequests guards against accidental use on large sets; zero means
	// the default of 24.
	MaxRequests int
}

// Name implements Scheduler.
func (Exact) Name() string { return "exact" }

// Schedule implements Scheduler.
func (e Exact) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	limit := e.MaxRequests
	if limit == 0 {
		limit = 24
	}
	if len(reqs) > limit {
		return nil, fmt.Errorf("schedule: exact scheduler limited to %d requests, got %d", limit, len(reqs))
	}
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return newResult("exact", t, nil), nil
	}
	paths, err := reqs.Routes(t)
	if err != nil {
		return nil, err
	}
	g := BuildConflictGraph(t, paths)
	n := len(reqs)

	// Upper bound from greedy gives the initial best.
	best := greedyPartition(t, reqs, paths)
	bestColors := len(best)
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}

	// Branch and bound: color vertices in order, trying existing colors
	// first, allowing a new color only while below the best known degree.
	// Symmetry is broken by letting vertex i introduce at most color
	// max(previous)+1.
	assignment := make([]int, n)
	var dfs func(v, used int) bool
	found := false
	dfs = func(v, used int) bool {
		if used >= bestColors {
			return false
		}
		if v == n {
			copy(assignment, color)
			bestColors = used
			found = true
			return true
		}
		improvedAny := false
		maxC := used
		if maxC > bestColors-1 {
			maxC = bestColors - 1
		}
		for c := 0; c <= maxC && c < bestColors; c++ {
			if c == used && used+1 >= bestColors {
				break
			}
			ok := true
			g.Neighbors(v, func(u int) {
				if color[u] == c {
					ok = false
				}
			})
			if !ok {
				continue
			}
			color[v] = c
			nextUsed := used
			if c == used {
				nextUsed++
			}
			if dfs(v+1, nextUsed) {
				improvedAny = true
			}
			color[v] = -1
		}
		return improvedAny
	}
	dfs(0, 0)

	if !found {
		// Greedy was already optimal.
		return newResult("exact", t, best), nil
	}
	configs := make([]request.Set, bestColors)
	for i, c := range assignment {
		configs[c] = append(configs[c], reqs[i])
	}
	return newResult("exact", t, configs), nil
}

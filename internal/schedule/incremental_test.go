package schedule_test

import (
	"fmt"
	"testing"

	"repro/internal/delta"
	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// driftedTarget mutates roughly frac of the pattern: survivors keep their
// order, departures are dropped, arrivals are appended.
func driftedTarget(rng *splitmix64, base request.Set, nn int, frac float64) request.Set {
	keep := int(float64(len(base)) * (1 - frac))
	target := base[:keep:keep].Clone()
	return append(target, randomPattern(rng, nn, len(base)-keep)...)
}

// resultRequests flattens a schedule back into the multiset it serves, in
// slot order.
func resultRequests(r *schedule.Result) request.Set {
	out := make(request.Set, 0, r.NumRequests())
	for _, c := range r.Configs {
		out = append(out, c...)
	}
	return out
}

// TestIncrementalMatchesPatch is the byte-identity proof promised by the
// Incremental doc comment: a batch Update on the live structure must
// produce exactly the schedule delta.Patch derives from the same base and
// target on the same topology. (This lives in the external test package so
// it can import delta, which itself imports schedule.)
func TestIncrementalMatchesPatch(t *testing.T) {
	for _, topoName := range differentialTopologies {
		topo, err := topology.Parse(topoName)
		if err != nil {
			t.Fatal(err)
		}
		nn := network.TerminalCount(topo)
		for seed := uint64(1); seed <= 4; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", topoName, seed), func(t *testing.T) {
				rng := splitmix64(seed)
				pattern := randomPattern(&rng, nn, 3*nn)
				base, err := schedule.Combined{}.Schedule(topo, pattern)
				if err != nil {
					t.Fatal(err)
				}
				inc, err := schedule.NewIncremental(base)
				if err != nil {
					t.Fatal(err)
				}
				// Chain several drifting targets: the live structure carries
				// state across batches, the stateless patcher re-derives from
				// the previous patched schedule; they must never diverge.
				prev := base
				for step := 0; step < 3; step++ {
					target := driftedTarget(&rng, resultRequests(prev), nn, 0.25)
					want, _, err := delta.Patch(prev, topo, target)
					if err != nil {
						t.Fatal(err)
					}
					if _, _, err := inc.Update(target); err != nil {
						t.Fatal(err)
					}
					got := inc.Detach(want.Algorithm)
					if g, w := canonicalResult(got), canonicalResult(want); g != w {
						t.Fatalf("step %d divergence:\nincremental:\n%s\npatch:\n%s", step, g, w)
					}
					if err := got.Validate(target); err != nil {
						t.Fatal(err)
					}
					prev = want
				}
			})
		}
	}
}

// TestIncrementalRemoveInsert pins the single-circuit mutation rules:
// Remove takes the lowest-slot occurrence, Insert first-fits over non-empty
// slots, and a remove/insert round-trip of the same request lands it where
// a batch diff would.
func TestIncrementalRemoveInsert(t *testing.T) {
	topo, err := topology.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	rng := splitmix64(99)
	pattern := randomPattern(&rng, network.TerminalCount(topo), 40)
	base, err := schedule.Greedy{}.Schedule(topo, pattern)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := schedule.NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Len() != len(pattern) || inc.Degree() != base.Degree() {
		t.Fatalf("live structure mismatch: len %d degree %d, want %d/%d",
			inc.Len(), inc.Degree(), len(pattern), base.Degree())
	}
	q := pattern[0]
	if !inc.Remove(q) {
		t.Fatalf("Remove(%v) = false, want true", q)
	}
	expected := pattern.Clone()[1:] // drops the one occurrence Remove took
	probe := request.Request{Src: 0, Dst: 15}
	present := 0
	for _, r := range expected {
		if r == probe {
			present++
		}
	}
	if removed := inc.Remove(probe); removed != (present > 0) {
		t.Fatalf("Remove(%v) = %v with %d occurrences live", probe, removed, present)
	} else if removed {
		for i, r := range expected {
			if r == probe {
				expected = append(expected[:i:i], expected[i+1:]...)
				break
			}
		}
	}
	if _, err := inc.Insert(q); err != nil {
		t.Fatal(err)
	}
	expected = append(expected, q)
	got := inc.Result(base.Algorithm)
	if _, ok := got.Slot[q]; !ok {
		t.Fatalf("%v missing from slot index after reinsertion", q)
	}
	if err := got.Validate(expected); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalResetReuse drives one structure across topologies and
// bases: Reset must fully rebind, leaving no stale occupancy behind.
func TestIncrementalResetReuse(t *testing.T) {
	rng := splitmix64(5)
	var inc schedule.Incremental
	for _, topoName := range []string{"torus-4x4", "ring-16", "torus-4x4", "omega-16"} {
		topo, err := topology.Parse(topoName)
		if err != nil {
			t.Fatal(err)
		}
		pattern := randomPattern(&rng, network.TerminalCount(topo), 2*topo.NumNodes())
		base, err := schedule.Coloring{}.Schedule(topo, pattern)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Reset(base); err != nil {
			t.Fatal(err)
		}
		got := inc.Detach(base.Algorithm)
		if g, w := canonicalResult(got), canonicalResult(base); g != w {
			t.Fatalf("%s: Reset round-trip diverges:\ngot:\n%s\nwant:\n%s", topoName, g, w)
		}
	}
}

package schedule_test

// Differential test layer for the parallel scheduling pipeline: the
// goroutine fan-out in Combined, the sharded conflict-graph build, and the
// shared route cache must be invisible — every parallel artifact must be
// bit-identical to its sequential counterpart, on every topology.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// determinismTopologies are the five families the differential tests sweep.
func determinismTopologies() []network.Topology {
	return []network.Topology{
		topology.NewLinear(8),
		topology.NewTorus(4, 4),
		topology.NewTorus3D(3, 3, 3),
		topology.NewHypercube(4),
		topology.NewOmega(16),
	}
}

// requireIdentical asserts two schedules are byte-identical: same algorithm
// label, same configurations in the same order with requests in the same
// order, and the same slot index.
func requireIdentical(t *testing.T, label string, seq, par *schedule.Result) {
	t.Helper()
	if seq.Algorithm != par.Algorithm {
		t.Fatalf("%s: algorithm %q (sequential) vs %q (parallel)", label, seq.Algorithm, par.Algorithm)
	}
	if !reflect.DeepEqual(seq.Configs, par.Configs) {
		t.Fatalf("%s: configurations differ:\nsequential: %v\nparallel:   %v", label, seq.Configs, par.Configs)
	}
	if !reflect.DeepEqual(seq.Slot, par.Slot) {
		t.Fatalf("%s: slot index differs", label)
	}
	if fmt.Sprintf("%v", seq.Configs) != fmt.Sprintf("%v", par.Configs) {
		t.Fatalf("%s: rendered schedules differ", label)
	}
}

// TestCombinedParallelMatchesSequential: same seed in, byte-identical
// schedule out, for randomized patterns (duplicates included) on all five
// topology families. Every schedule is re-checked with Validate.
func TestCombinedParallelMatchesSequential(t *testing.T) {
	for _, topo := range determinismTopologies() {
		n := network.TerminalCount(topo)
		rng := rand.New(rand.NewSource(1996))
		sets := []request.Set{patterns.AllToAll(n)}
		for trial := 0; trial < 5; trial++ {
			sets = append(sets, patterns.RandomWithRepetition(rng, n, 3*n))
		}
		for i, set := range sets {
			label := fmt.Sprintf("%s/set-%d", topo.Name(), i)
			seq, err := schedule.Combined{Sequential: true}.Schedule(topo, set)
			if err != nil {
				t.Fatalf("%s: sequential: %v", label, err)
			}
			par, err := schedule.Combined{}.Schedule(topo, set)
			if err != nil {
				t.Fatalf("%s: parallel: %v", label, err)
			}
			requireIdentical(t, label, seq, par)
			if err := seq.Validate(set); err != nil {
				t.Fatalf("%s: sequential schedule invalid: %v", label, err)
			}
			if err := par.Validate(set); err != nil {
				t.Fatalf("%s: parallel schedule invalid: %v", label, err)
			}
		}
	}
}

// TestCombinedParallelRepeatable: repeated parallel runs of the same input
// are identical to each other — goroutine interleaving must never leak into
// the result.
func TestCombinedParallelRepeatable(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(7))
	set, err := patterns.Random(rng, 64, 1200)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := schedule.Combined{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		got, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("run-%d", run), ref, got)
	}
}

// TestCombinedParallelSharedTopology schedules concurrently from many
// goroutines on one shared topology value, exercising the route cache, the
// AAPC decomposition cache, and the conflict-graph shards under -race.
// Every result must equal the sequential reference for its pattern.
func TestCombinedParallelSharedTopology(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(42))
	const numSets = 6
	sets := make([]request.Set, numSets)
	refs := make([]*schedule.Result, numSets)
	for i := range sets {
		var err error
		sets[i], err = patterns.Random(rng, 64, 400+200*i)
		if err != nil {
			t.Fatal(err)
		}
		refs[i], err = schedule.Combined{Sequential: true}.Schedule(torus, sets[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 24)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range sets {
				res, err := schedule.Combined{}.Schedule(torus, sets[i])
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(res.Configs, refs[i].Configs) {
					errc <- fmt.Errorf("set %d: concurrent schedule diverged from sequential reference", i)
					return
				}
				if err := res.Validate(sets[i]); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// withConflictGraphKnobs runs fn with the parallel-build knobs overridden,
// restoring the defaults afterwards.
func withConflictGraphKnobs(cutoff, workers int, fn func()) {
	oldCutoff, oldWorkers := schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers
	schedule.ConflictGraphParallelCutoff = cutoff
	schedule.ConflictGraphWorkers = workers
	defer func() {
		schedule.ConflictGraphParallelCutoff = oldCutoff
		schedule.ConflictGraphWorkers = oldWorkers
	}()
	fn()
}

// TestConflictGraphShardedMatchesSerial: the sharded row construction yields
// exactly the serial graph — every adjacency bit and every degree.
func TestConflictGraphShardedMatchesSerial(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	rng := rand.New(rand.NewSource(3))
	sets := []request.Set{
		patterns.AllToAll(16),
		patterns.RandomWithRepetition(rng, 16, 300),
	}
	for si, set := range sets {
		paths, err := set.Routes(torus)
		if err != nil {
			t.Fatal(err)
		}
		var serial, sharded *schedule.ConflictGraph
		withConflictGraphKnobs(1<<30, 1, func() { serial = schedule.BuildConflictGraph(torus, paths) })
		withConflictGraphKnobs(1, 4, func() { sharded = schedule.BuildConflictGraph(torus, paths) })
		if serial.Len() != sharded.Len() || serial.Edges() != sharded.Edges() {
			t.Fatalf("set %d: size mismatch: %d/%d vertices, %d/%d edges",
				si, serial.Len(), sharded.Len(), serial.Edges(), sharded.Edges())
		}
		for i := 0; i < serial.Len(); i++ {
			if serial.Degree(i) != sharded.Degree(i) {
				t.Fatalf("set %d: degree(%d) = %d serial, %d sharded", si, i, serial.Degree(i), sharded.Degree(i))
			}
			for j := 0; j < serial.Len(); j++ {
				if serial.Adjacent(i, j) != sharded.Adjacent(i, j) {
					t.Fatalf("set %d: adjacency (%d,%d) differs", si, i, j)
				}
			}
		}
	}
}

// TestConflictGraphShardedLargeDegreesMatch covers the paper's 4032-request
// all-to-all, where the parallel path actually engages by default: degree
// arrays and edge counts must match the serial build.
func TestConflictGraphShardedLargeDegreesMatch(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	paths, err := set.Routes(torus)
	if err != nil {
		t.Fatal(err)
	}
	var serial, sharded *schedule.ConflictGraph
	withConflictGraphKnobs(1<<30, 1, func() { serial = schedule.BuildConflictGraph(torus, paths) })
	withConflictGraphKnobs(1, 0, func() { sharded = schedule.BuildConflictGraph(torus, paths) })
	if serial.Edges() != sharded.Edges() {
		t.Fatalf("edges: %d serial, %d sharded", serial.Edges(), sharded.Edges())
	}
	for i := 0; i < serial.Len(); i++ {
		if serial.Degree(i) != sharded.Degree(i) {
			t.Fatalf("degree(%d) = %d serial, %d sharded", i, serial.Degree(i), sharded.Degree(i))
		}
	}
}

// TestCombinedSequentialKnobEquivalence pins the zero-value contract: the
// zero Combined{} is the parallel scheduler and must agree with the
// documented Sequential escape hatch on the paper's own workload.
func TestCombinedSequentialKnobEquivalence(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	seq, err := schedule.Combined{Sequential: true}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	par, err := schedule.Combined{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "all-to-all-64", seq, par)
	if seq.Degree() != 64 {
		t.Fatalf("combined degree %d on the 8x8 torus all-to-all, want 64", seq.Degree())
	}
}

package schedule

import (
	"repro/internal/network"
	"repro/internal/request"
)

// Greedy is the first-fit scheduler of Fig. 2. It repeatedly builds a
// configuration by scanning the remaining requests in order and inserting
// every request that does not conflict with the configuration so far, until
// all requests are placed. The outcome depends on the order of the request
// set (the Fig. 3 example exploits exactly that), which the ordered-AAPC
// algorithm turns to its advantage.
type Greedy struct{}

// Name implements Scheduler.
func (Greedy) Name() string { return "greedy" }

// Schedule implements Scheduler.
func (g Greedy) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	return pooledSchedule(g, t, reqs)
}

func (Greedy) scheduleInto(st *CompileState, t network.Topology, reqs request.Set) (*Result, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	st.bind(t)
	paths, err := st.routes(t, reqs)
	if err != nil {
		return nil, err
	}
	st.greedyConfigs(reqs, paths)
	return st.finish("greedy", t), nil
}

// greedyPartition runs the Fig. 2 loop on pre-routed requests, returning
// freshly allocated configurations. It serves the callers that keep
// partitions alive across runs (Exact's branch-and-bound incumbent,
// IteratedGreedy's restarts); the hot scheduling paths use the arena's
// greedyConfigs instead.
func greedyPartition(t network.Topology, reqs request.Set, paths []network.Path) []request.Set {
	remaining := make([]int, len(reqs)) // indices into reqs, in order
	for i := range remaining {
		remaining[i] = i
	}
	var configs []request.Set
	var occ network.BitOccupancy
	occ.Bind(t)
	for len(remaining) > 0 {
		occ.Reset()
		var config request.Set
		rest := remaining[:0]
		for _, i := range remaining {
			if occ.CanAdd(paths[i]) {
				occ.Add(paths[i])
				config = append(config, reqs[i])
			} else {
				rest = append(rest, i)
			}
		}
		remaining = rest
		configs = append(configs, config)
	}
	return configs
}

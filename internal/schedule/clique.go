package schedule

import (
	"math/bits"
	"sort"

	"repro/internal/network"
	"repro/internal/request"
)

// CliqueBound returns a lower bound on the multiplexing degree from a
// clique in the conflict graph: pairwise-conflicting requests must all sit
// in different configurations, so any clique's size bounds the degree from
// below. In principle a clique can exceed the resource bound of LowerBound
// (resources yield cliques, but not every clique comes from one shared
// resource); on the patterns measured here the two coincide — the residual
// gaps of the classic patterns (shuffle-exchange 3 vs 4, hypercube 6 vs 7)
// come from non-clique structure such as odd cycles, which is itself a
// finding the test suite records.
//
// Finding a maximum clique is NP-hard; this uses a greedy
// common-neighborhood heuristic from several high-degree seeds, so the
// returned value is a valid (not necessarily maximum) bound.
func CliqueBound(t network.Topology, reqs request.Set) (int, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	paths, err := reqs.Routes(t)
	if err != nil {
		return 0, err
	}
	g := BuildConflictGraph(t, paths)
	n := g.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })

	best := 1
	seeds := 8
	if seeds > n {
		seeds = n
	}
	words := g.Words()
	cand := make([]uint64, words)
	for s := 0; s < seeds; s++ {
		// Candidates start as the seed's neighborhood and shrink to the
		// common neighborhood of the growing clique; each step admits the
		// candidate with the most neighbors among the remaining candidates.
		for w := range cand {
			cand[w] = 0
		}
		g.OrInto(cand, order[s])
		size := 1
		for {
			bestV, bestDeg := -1, -1
			for w, word := range cand {
				for word != 0 {
					b := word & (-word)
					v := w*64 + bits.TrailingZeros64(b)
					word &^= b
					if d := g.CountWithin(cand, v); d > bestDeg {
						bestV, bestDeg = v, d
					}
				}
			}
			if bestV < 0 {
				break
			}
			size++
			g.AndInto(cand, bestV)
			cand[bestV/64] &^= 1 << uint(bestV%64)
		}
		if size > best {
			best = size
		}
	}
	return best, nil
}

// BestLowerBound combines the resource bound and the clique bound.
func BestLowerBound(t network.Topology, reqs request.Set) (int, error) {
	rb, err := LowerBound(t, reqs)
	if err != nil {
		return 0, err
	}
	cb, err := CliqueBound(t, reqs)
	if err != nil {
		return 0, err
	}
	if cb > rb {
		return cb, nil
	}
	return rb, nil
}

package schedule_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// This file is the differential-oracle suite for the bitset scheduler core:
// every production scheduler is run against its retained map-based original
// (oracle.go) over the topology families, on table-driven patterns and on
// SplitMix64-generated random multisets, and the two Results must be
// byte-identical under a canonical encoding. The suite runs under -race in
// CI with varied conflict-graph worker counts, so it also proves the
// sharded graph build and the goroutine-racing Combined introduce no
// schedule-affecting nondeterminism.

// splitmix64 is the standard 64-bit mixer — a tiny, dependency-free PRNG
// whose streams are reproducible from the printed seed.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// canonicalResult renders a Result into the byte string equality is judged
// on: algorithm, topology name, configurations in slot order, and the slot
// index in sorted key order.
func canonicalResult(r *schedule.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s topo=%s degree=%d\n", r.Algorithm, r.Topology.Name(), r.Degree())
	for k, cfg := range r.Configs {
		fmt.Fprintf(&b, "slot %d:", k)
		for _, q := range cfg {
			fmt.Fprintf(&b, " %v", q)
		}
		b.WriteByte('\n')
	}
	keys := make([]request.Request, 0, len(r.Slot))
	for q := range r.Slot {
		keys = append(keys, q)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	for _, q := range keys {
		fmt.Fprintf(&b, "%v->%d ", q, r.Slot[q])
	}
	return b.String()
}

// differentialTopologies spans the supported families at sizes small
// enough to keep the full cross product fast. The dragonfly and fat-tree
// entries route PE traffic through internal switches and detour links, so
// they exercise conflict detection on paths the direct families never
// produce.
var differentialTopologies = []string{
	"torus-4x4", "mesh-4x4", "ring-16", "hypercube-4", "omega-16",
	"dragonfly-4x4x1", "dragonfly-2x4x2", "fattree-4",
}

// schedulerPair couples a production scheduler with its map-based oracle.
// Both sides of a pair report the same algorithm name, so byte-identical
// results mean identical schedules, not just equal degrees.
type schedulerPair struct {
	name           string
	bitset, oracle schedule.Scheduler
}

func schedulerPairs() []schedulerPair {
	return []schedulerPair{
		{"greedy", schedule.Greedy{}, schedule.OracleGreedy{}},
		{"coloring", schedule.Coloring{}, schedule.OracleColoring{}},
		{"coloring-ratio", schedule.Coloring{Priority: schedule.PaperRatioPriority},
			schedule.OracleColoring{Priority: schedule.PaperRatioPriority}},
		{"aapc", schedule.OrderedAAPC{}, schedule.OracleOrderedAAPC{}},
		{"aapc-unranked", schedule.OrderedAAPC{DisableRanking: true},
			schedule.OracleOrderedAAPC{DisableRanking: true}},
		{"combined", schedule.Combined{}, schedule.OracleCombined{}},
		{"combined-seq", schedule.Combined{Sequential: true},
			schedule.OracleCombined{Sequential: true}},
	}
}

// tablePatterns are deterministic request families, parameterized by node
// count. Duplicates are deliberate: they conflict with themselves and
// stress the multiset handling of both cores.
func tablePatterns(nn int) map[string]request.Set {
	pats := map[string]request.Set{}
	var transpose, shift, reverse, gather, dups request.Set
	for i := 0; i < nn; i++ {
		j := (i*7 + 3) % nn
		if i != j {
			transpose = append(transpose, request.Request{Src: network.NodeID(i), Dst: network.NodeID(j)})
		}
		shift = append(shift, request.Request{Src: network.NodeID(i), Dst: network.NodeID((i + 1) % nn)})
		if i != nn-1-i {
			reverse = append(reverse, request.Request{Src: network.NodeID(i), Dst: network.NodeID(nn - 1 - i)})
		}
		if i != 0 {
			gather = append(gather, request.Request{Src: network.NodeID(i), Dst: network.NodeID(0)})
		}
	}
	for i := 0; i < nn/2; i++ {
		q := request.Request{Src: network.NodeID(i), Dst: network.NodeID((i + 2) % nn)}
		if q.Src != q.Dst {
			dups = append(dups, q, q) // each pair twice
		}
	}
	pats["transpose"] = transpose
	pats["shift"] = shift
	pats["reverse"] = reverse
	pats["gather"] = gather
	pats["duplicates"] = dups
	pats["empty"] = nil
	return pats
}

// randomPattern draws n requests (with duplicates possible) from the PRNG.
func randomPattern(rng *splitmix64, nn, n int) request.Set {
	set := make(request.Set, 0, n)
	for len(set) < n {
		s := network.NodeID(rng.next() % uint64(nn))
		d := network.NodeID(rng.next() % uint64(nn))
		if s != d {
			set = append(set, request.Request{Src: s, Dst: d})
		}
	}
	return set
}

// permutationPattern draws a random full permutation with no fixed points
// (derangement-ish: fixed points are skipped), which is inside every AAPC
// decomposition, so OrderedAAPC and Combined accept it on any topology.
func permutationPattern(rng *splitmix64, nn int) request.Set {
	perm := make([]int, nn)
	for i := range perm {
		perm[i] = i
	}
	for i := nn - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	var set request.Set
	for i, j := range perm {
		if i != j {
			set = append(set, request.Request{Src: network.NodeID(i), Dst: network.NodeID(j)})
		}
	}
	return set
}

// runDifferential asserts both schedulers agree byte-for-byte on one input.
func runDifferential(t *testing.T, bitset, oracle schedule.Scheduler, topo network.Topology, reqs request.Set) {
	t.Helper()
	got, gotErr := bitset.Schedule(topo, reqs.Clone())
	want, wantErr := oracle.Schedule(topo, reqs.Clone())
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("error divergence: bitset %v, oracle %v", gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	g, w := canonicalResult(got), canonicalResult(want)
	if g != w {
		t.Fatalf("schedule divergence on %s with %d requests:\nbitset:\n%s\noracle:\n%s",
			topo.Name(), len(reqs), g, w)
	}
	if err := got.Validate(reqs); err != nil {
		t.Fatal(err)
	}
}

// withWorkers runs fn under each conflict-graph build configuration:
// default (serial for these sizes), forced-parallel with several worker
// counts, and back. The graph build must be invisible in the output.
func withWorkers(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	oldCutoff, oldWorkers := schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers
	defer func() {
		schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers = oldCutoff, oldWorkers
	}()
	for _, w := range []int{0, 1, 2, 5} {
		schedule.ConflictGraphWorkers = w
		if w > 1 {
			schedule.ConflictGraphParallelCutoff = 1 // force the sharded build
		} else {
			schedule.ConflictGraphParallelCutoff = oldCutoff
		}
		t.Run(fmt.Sprintf("workers=%d", w), fn)
	}
}

// TestDifferentialTable runs every scheduler pair on every table pattern of
// every topology family.
func TestDifferentialTable(t *testing.T) {
	for _, topoName := range differentialTopologies {
		topo, err := topology.Parse(topoName)
		if err != nil {
			t.Fatal(err)
		}
		for patName, reqs := range tablePatterns(network.TerminalCount(topo)) {
			reqs := reqs
			for _, pair := range schedulerPairs() {
				pair := pair
				t.Run(fmt.Sprintf("%s/%s/%s", topoName, patName, pair.name), func(t *testing.T) {
					withWorkers(t, func(t *testing.T) {
						runDifferential(t, pair.bitset, pair.oracle, topo, reqs)
					})
				})
			}
		}
	}
}

// TestDifferentialAAPCCutoff pins that the two Combined cores apply the
// AAPC terminal-count gate identically: above the cutoff both reduce to
// their coloring member and still agree byte-for-byte, including the
// winner name.
func TestDifferentialAAPCCutoff(t *testing.T) {
	old := schedule.AAPCTerminalCutoff
	defer func() { schedule.AAPCTerminalCutoff = old }()
	schedule.AAPCTerminalCutoff = 4
	for _, topoName := range []string{"torus-4x4", "dragonfly-2x4x2"} {
		topo, err := topology.Parse(topoName)
		if err != nil {
			t.Fatal(err)
		}
		for patName, reqs := range tablePatterns(network.TerminalCount(topo)) {
			reqs := reqs
			t.Run(fmt.Sprintf("%s/%s", topoName, patName), func(t *testing.T) {
				runDifferential(t, schedule.Combined{}, schedule.OracleCombined{}, topo, reqs)
			})
		}
	}
}

// TestDifferentialRandom drives the same cross product with SplitMix64
// multisets; failures print the seed for replay.
func TestDifferentialRandom(t *testing.T) {
	const seeds = 8
	for _, topoName := range differentialTopologies {
		topo, err := topology.Parse(topoName)
		if err != nil {
			t.Fatal(err)
		}
		nn := network.TerminalCount(topo)
		for seed := uint64(1); seed <= seeds; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", topoName, seed), func(t *testing.T) {
				rng := splitmix64(seed * 0x9e3779b97f4a7c15)
				var reqs request.Set
				if seed%2 == 0 {
					reqs = permutationPattern(&rng, nn)
				} else {
					reqs = randomPattern(&rng, nn, 2*nn+int(rng.next()%uint64(nn)))
				}
				for _, pair := range schedulerPairs() {
					pair := pair
					t.Run(pair.name, func(t *testing.T) {
						runDifferential(t, pair.bitset, pair.oracle, topo, reqs)
					})
				}
			})
		}
	}
}

// TestDifferentialExtend pins Extend to its map-based original: a base
// schedule from each core, extended with a batch that includes duplicates
// of already-scheduled requests, must come out byte-identical.
func TestDifferentialExtend(t *testing.T) {
	for _, topoName := range differentialTopologies {
		topo, err := topology.Parse(topoName)
		if err != nil {
			t.Fatal(err)
		}
		nn := network.TerminalCount(topo)
		rng := splitmix64(0xABCDEF)
		base := randomPattern(&rng, nn, 2*nn)
		extra := randomPattern(&rng, nn, nn/2)
		extra = append(extra, base[0], base[1]) // self-conflicting duplicates
		t.Run(topoName, func(t *testing.T) {
			res, err := schedule.Coloring{}.Schedule(topo, base)
			if err != nil {
				t.Fatal(err)
			}
			got, err := schedule.Extend(res, extra)
			if err != nil {
				t.Fatal(err)
			}
			want, err := schedule.OracleExtend(res, extra)
			if err != nil {
				t.Fatal(err)
			}
			if g, w := canonicalResult(got), canonicalResult(want); g != w {
				t.Fatalf("extend divergence:\nbitset:\n%s\noracle:\n%s", g, w)
			}
			if err := got.Validate(append(base.Clone(), extra...)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

package schedule_test

import (
	"testing"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// FuzzGreedyValidPartition feeds arbitrary request bytes through the greedy
// scheduler and asserts schedule validity and the lower bound.
func FuzzGreedyValidPartition(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{0, 5, 0, 5, 0, 5})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 400 {
			raw = raw[:400]
		}
		torus := topology.NewTorus(4, 4)
		var set request.Set
		for i := 0; i+1 < len(raw); i += 2 {
			s := network.NodeID(int(raw[i]) % 16)
			d := network.NodeID(int(raw[i+1]) % 16)
			if s != d {
				set = append(set, request.Request{Src: s, Dst: d})
			}
		}
		res, err := schedule.Greedy{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(set); err != nil {
			t.Fatal(err)
		}
		if len(set) == 0 {
			return
		}
		lb, err := schedule.LowerBound(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degree() < lb {
			t.Fatalf("degree %d below lower bound %d", res.Degree(), lb)
		}
	})
}

// FuzzColoringValidPartition does the same for the coloring scheduler,
// whose priority machinery has more state to get wrong.
func FuzzColoringValidPartition(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		torus := topology.NewTorus(4, 4)
		var set request.Set
		for i := 0; i+1 < len(raw); i += 2 {
			s := network.NodeID(int(raw[i]) % 16)
			d := network.NodeID(int(raw[i+1]) % 16)
			if s != d {
				set = append(set, request.Request{Src: s, Dst: d})
			}
		}
		res, err := schedule.Coloring{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(set); err != nil {
			t.Fatal(err)
		}
	})
}

package schedule_test

import (
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// FuzzGreedyValidPartition feeds arbitrary request bytes through the greedy
// scheduler and asserts schedule validity and the lower bound.
func FuzzGreedyValidPartition(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{0, 5, 0, 5, 0, 5})
	// Route-cache stressors: the same (s, d) pair repeated many times hits
	// the cache on every lookup after the first, and heavy duplication
	// exercises the Dedup edge cases downstream consumers rely on.
	f.Add([]byte{1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2})
	f.Add([]byte{7, 8, 8, 7, 7, 8, 8, 7, 7, 8, 8, 7})
	f.Add([]byte{0, 15, 15, 0, 0, 15, 3, 12, 12, 3, 3, 12, 0, 15})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 400 {
			raw = raw[:400]
		}
		torus := topology.NewTorus(4, 4)
		var set request.Set
		for i := 0; i+1 < len(raw); i += 2 {
			s := network.NodeID(int(raw[i]) % 16)
			d := network.NodeID(int(raw[i+1]) % 16)
			if s != d {
				set = append(set, request.Request{Src: s, Dst: d})
			}
		}
		res, err := schedule.Greedy{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(set); err != nil {
			t.Fatal(err)
		}
		if len(set) == 0 {
			return
		}
		lb, err := schedule.LowerBound(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degree() < lb {
			t.Fatalf("degree %d below lower bound %d", res.Degree(), lb)
		}
	})
}

// FuzzColoringValidPartition does the same for the coloring scheduler,
// whose priority machinery has more state to get wrong.
func FuzzColoringValidPartition(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	// Repeated pairs: duplicates are mutually conflicting (shared injection
	// and ejection ports), forcing one configuration per copy while the
	// route cache serves a single shared path for all of them.
	f.Add([]byte{4, 9, 4, 9, 4, 9, 4, 9, 4, 9})
	f.Add([]byte{2, 3, 3, 2, 2, 3, 3, 2, 11, 6, 6, 11, 11, 6})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		torus := topology.NewTorus(4, 4)
		var set request.Set
		for i := 0; i+1 < len(raw); i += 2 {
			s := network.NodeID(int(raw[i]) % 16)
			d := network.NodeID(int(raw[i+1]) % 16)
			if s != d {
				set = append(set, request.Request{Src: s, Dst: d})
			}
		}
		res, err := schedule.Coloring{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(set); err != nil {
			t.Fatal(err)
		}
	})
}

// bitsetGraphSeeds are request multisets lifted from the integration
// schedules: the table patterns the experiment sweeps compile on a 4x4
// torus, encoded as (src, dst) byte pairs.
func bitsetGraphSeeds() [][]byte {
	var transpose, shift, reverse, gather []byte
	for i := 0; i < 16; i++ {
		if j := (i*7 + 3) % 16; i != j {
			transpose = append(transpose, byte(i), byte(j))
		}
		shift = append(shift, byte(i), byte((i+1)%16))
		if i != 15-i {
			reverse = append(reverse, byte(i), byte(15-i))
		}
		if i != 0 {
			gather = append(gather, byte(i), byte(0))
		}
	}
	return [][]byte{transpose, shift, reverse, gather,
		{4, 9, 4, 9, 4, 9, 4, 9}, // duplicate-heavy
		{0, 15, 15, 0, 0, 15, 3, 12, 12, 3}}
}

// FuzzBitsetGraph differentially fuzzes the conflict-graph build: for an
// arbitrary request multiset, the word-parallel CSR construction (serial
// and sharded, at a worker count drawn from the input) must produce exactly
// the graph the retained pairwise oracle produces — edge for edge, degree
// for degree — and the coloring scheduler on top of it must still emit a
// valid schedule.
func FuzzBitsetGraph(f *testing.F) {
	for _, seed := range bitsetGraphSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		torus := topology.NewTorus(4, 4)
		var set request.Set
		workers := 1
		if len(raw) > 0 {
			workers = 1 + int(raw[0])%4
		}
		for i := 0; i+1 < len(raw); i += 2 {
			s := network.NodeID(int(raw[i]) % 16)
			d := network.NodeID(int(raw[i+1]) % 16)
			if s != d {
				set = append(set, request.Request{Src: s, Dst: d})
			}
		}
		paths, err := set.Routes(torus)
		if err != nil {
			t.Fatal(err)
		}
		oracle := schedule.OracleConflictGraph(paths)
		check := func(g *schedule.ConflictGraph, how string) {
			t.Helper()
			if g.Len() != oracle.Len() {
				t.Fatalf("%s: %d vertices, oracle has %d", how, g.Len(), oracle.Len())
			}
			for i := 0; i < g.Len(); i++ {
				if g.Degree(i) != oracle.Degree(i) {
					t.Fatalf("%s: vertex %d degree %d, oracle %d", how, i, g.Degree(i), oracle.Degree(i))
				}
				for j := 0; j < g.Len(); j++ {
					if g.Adjacent(i, j) != oracle.Adjacent(i, j) {
						t.Fatalf("%s: edge (%d,%d) = %v, oracle %v", how, i, j,
							g.Adjacent(i, j), oracle.Adjacent(i, j))
					}
				}
			}
		}
		check(schedule.BuildConflictGraph(torus, paths), "serial")
		oldCutoff, oldWorkers := schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers
		schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers = 1, workers
		defer func() {
			schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers = oldCutoff, oldWorkers
		}()
		check(schedule.BuildConflictGraph(torus, paths), "sharded")
		res, err := schedule.Coloring{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(set); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCombinedParallelDeterminism differentially fuzzes the parallel
// scheduling pipeline: for arbitrary request bytes, the goroutine-racing
// Combined must return a schedule byte-identical to the sequential one, and
// both must validate. Seeds skew toward duplicate-heavy sets, where the
// route cache serves one path to both member schedulers at once and
// Dedup-surviving duplicates take distinct slots.
func FuzzCombinedParallelDeterminism(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{5, 10, 5, 10, 5, 10, 5, 10, 5, 10})
	f.Add([]byte{1, 2, 2, 1, 1, 2, 2, 1, 9, 14, 14, 9, 9, 14})
	f.Add([]byte{0, 15, 0, 14, 0, 13, 0, 12, 0, 11, 0, 10})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		torus := topology.NewTorus(4, 4)
		var set request.Set
		for i := 0; i+1 < len(raw); i += 2 {
			s := network.NodeID(int(raw[i]) % 16)
			d := network.NodeID(int(raw[i+1]) % 16)
			if s != d {
				set = append(set, request.Request{Src: s, Dst: d})
			}
		}
		seq, err := schedule.Combined{Sequential: true}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		par, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Algorithm != par.Algorithm {
			t.Fatalf("algorithm %q sequential vs %q parallel", seq.Algorithm, par.Algorithm)
		}
		if !reflect.DeepEqual(seq.Configs, par.Configs) {
			t.Fatalf("parallel schedule diverged:\nsequential: %v\nparallel:   %v", seq.Configs, par.Configs)
		}
		if !reflect.DeepEqual(seq.Slot, par.Slot) {
			t.Fatal("slot index diverged")
		}
		if err := par.Validate(set); err != nil {
			t.Fatal(err)
		}
	})
}

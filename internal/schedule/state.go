package schedule

import (
	"fmt"
	"sync"

	"repro/internal/network"
	"repro/internal/request"
)

// grow returns s resized to n elements, reallocating only when the capacity
// is insufficient. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growZero is grow with every element zeroed.
func growZero[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// CompileState is the scheduling arena: every scratch structure the bitset
// scheduler core needs — routed paths, the conflict graph and its inverted
// resource index, coloring and greedy work sets, and the Result under
// construction — lives here and is reused across compiles. After the first
// compile of a given size, scheduling through the same state performs zero
// heap allocations (see TestScheduleSteadyStateAllocs), which is what keeps
// the compile service's steady-state latency flat under load.
//
// A CompileState is not safe for concurrent use. The package-level
// Scheduler.Schedule entry points draw states from an internal pool and
// return detached Results; use Compile directly only when the caller owns
// the state and can respect the arena lifetime.
type CompileState struct {
	nl, nn int // resource space of the topology bound by the current compile

	paths []network.Path

	// Conflict graph arena.
	g     ConflictGraph
	gflat []uint64
	grows [][]uint64
	gdeg  []int
	ix    resourceIndex

	// Coloring scratch.
	uncoloredDeg []int
	colored      []bool
	blocked      []uint64
	cand         []int
	ordered      []int
	inConfig     []int
	cnt          []int
	keys         []float64

	// Greedy scratch.
	occ network.BitOccupancy
	rem []int32

	// Ordered-AAPC scratch.
	rank      []int
	phase     []int
	order     []int
	pos       []int
	pcnt      []int
	reordered request.Set
	rpaths    []network.Path

	// Lower-bound scratch.
	loadLink []int
	loadSrc  []int
	loadDst  []int

	// Result arena: all configurations share one backing array, sliced into
	// per-slot windows; the Slot map is cleared and refilled, which Go maps
	// do without allocating once the buckets exist.
	cfgBack  request.Set
	cfgStart int
	cfgs     []request.Set
	res      Result

	// aux is the second arena Combined's ordered-AAPC member runs in, so
	// both member schedules stay alive for the final comparison.
	aux *CompileState
}

// NewCompileState returns an empty arena. States grow to fit the largest
// compile they have served and keep that memory.
func NewCompileState() *CompileState { return new(CompileState) }

// statePool feeds the package-level Schedule entry points. States returned
// to the pool keep their memory, so a steady stream of same-shaped compiles
// settles into allocation-free scheduling.
var statePool = sync.Pool{New: func() any { return NewCompileState() }}

// Compile schedules reqs on t with scheduler s inside the arena. For the
// paper's heuristics (Greedy, Coloring, OrderedAAPC, Combined) the returned
// Result is owned by the state: it is valid until the next Compile on the
// same state, and scheduling steady-state is allocation-free. Any other
// Scheduler falls back to its own Schedule method and returns an
// independent Result.
func (st *CompileState) Compile(s Scheduler, t network.Topology, reqs request.Set) (*Result, error) {
	switch sch := s.(type) {
	case Greedy:
		return sch.scheduleInto(st, t, reqs)
	case Coloring:
		return sch.scheduleInto(st, t, reqs)
	case OrderedAAPC:
		return sch.scheduleInto(st, t, reqs)
	case Combined:
		return sch.scheduleInto(st, t, reqs)
	default:
		return s.Schedule(t, reqs)
	}
}

// pooledSchedule runs s through a pooled arena and detaches the result —
// the implementation behind the built-in schedulers' Schedule methods.
func pooledSchedule(s Scheduler, t network.Topology, reqs request.Set) (*Result, error) {
	st := statePool.Get().(*CompileState)
	res, err := st.Compile(s, t, reqs)
	if err != nil {
		statePool.Put(st)
		return nil, err
	}
	out := res.detach()
	statePool.Put(st)
	return out, nil
}

// detach deep-copies an arena-owned Result into independently owned memory.
func (r *Result) detach() *Result {
	out := &Result{Algorithm: r.Algorithm, Topology: r.Topology}
	if len(r.Configs) > 0 {
		back := make(request.Set, 0, r.NumRequests())
		out.Configs = make([]request.Set, len(r.Configs))
		for k, c := range r.Configs {
			start := len(back)
			back = append(back, c...)
			out.Configs[k] = back[start:len(back):len(back)]
		}
	}
	out.Slot = make(map[request.Request]int, len(r.Slot))
	for q, s := range r.Slot {
		out.Slot[q] = s
	}
	return out
}

// bind records the resource space of the topology for this compile.
func (st *CompileState) bind(t network.Topology) {
	st.nl, st.nn = t.NumLinks(), t.NumNodes()
}

// routes fills the arena's path slice from the process-wide route cache;
// same error contract as request.Set.Routes.
func (st *CompileState) routes(t network.Topology, reqs request.Set) ([]network.Path, error) {
	if cap(st.paths) < len(reqs) {
		st.paths = make([]network.Path, 0, len(reqs))
	}
	st.paths = st.paths[:0]
	for _, r := range reqs {
		p, err := network.CachedRoute(t, r.Src, r.Dst)
		if err != nil {
			return nil, fmt.Errorf("request %v: %w", r, err)
		}
		st.paths = append(st.paths, p)
	}
	return st.paths, nil
}

// buildGraph constructs the conflict graph in the arena; identical output
// to BuildConflictGraph.
func (st *CompileState) buildGraph(paths []network.Path) *ConflictGraph {
	n := len(paths)
	words := (n + 63) / 64
	st.gflat = growZero(st.gflat, n*words)
	st.grows = grow(st.grows, n)
	for i := range st.grows {
		st.grows[i] = st.gflat[i*words : (i+1)*words]
	}
	st.gdeg = grow(st.gdeg, n)
	st.g = ConflictGraph{n: n, rows: st.grows, deg: st.gdeg}
	st.ix.build(st.nl, st.nn, paths)
	fillAllRows(&st.g, st.nl, st.nn, paths, &st.ix)
	return &st.g
}

// Configuration builder. All configurations of one compile are windows into
// cfgBack, which is pre-sized to the request count so appends never
// reallocate mid-build.

func (st *CompileState) resetConfigs(n int) {
	if cap(st.cfgBack) < n {
		st.cfgBack = make(request.Set, 0, n)
	}
	st.cfgBack = st.cfgBack[:0]
	st.cfgs = st.cfgs[:0]
}

func (st *CompileState) beginConfig() { st.cfgStart = len(st.cfgBack) }

func (st *CompileState) push(q request.Request) { st.cfgBack = append(st.cfgBack, q) }

func (st *CompileState) endConfig() {
	end := len(st.cfgBack)
	st.cfgs = append(st.cfgs, st.cfgBack[st.cfgStart:end:end])
}

// finish assembles the arena Result, refilling the reused Slot map.
func (st *CompileState) finish(alg string, t network.Topology) *Result {
	st.res.Algorithm = alg
	st.res.Topology = t
	if len(st.cfgs) == 0 {
		st.res.Configs = nil
	} else {
		st.res.Configs = st.cfgs
	}
	if st.res.Slot == nil {
		st.res.Slot = make(map[request.Request]int, len(st.cfgBack))
	} else {
		clear(st.res.Slot)
	}
	for k, c := range st.cfgs {
		for _, q := range c {
			st.res.Slot[q] = k
		}
	}
	return &st.res
}

// greedyConfigs runs the Fig. 2 first-fit loop on pre-routed requests into
// the arena's configuration builder. Shared by Greedy and OrderedAAPC.
func (st *CompileState) greedyConfigs(reqs request.Set, paths []network.Path) {
	st.resetConfigs(len(reqs))
	st.occ.BindSize(st.nl, st.nn)
	rem := grow(st.rem, len(reqs))[:0]
	for i := range reqs {
		rem = append(rem, int32(i))
	}
	st.rem = rem[:cap(rem)]
	for len(rem) > 0 {
		st.occ.Reset()
		st.beginConfig()
		w := 0
		for _, i := range rem {
			if st.occ.CanAdd(paths[i]) {
				st.occ.Add(paths[i])
				st.push(reqs[i])
			} else {
				rem[w] = i
				w++
			}
		}
		rem = rem[:w]
		st.endConfig()
	}
}

// lowerBound is LowerBound through the arena's load counters.
func (st *CompileState) lowerBound(t network.Topology, reqs request.Set) (int, error) {
	st.bind(t)
	paths, err := st.routes(t, reqs)
	if err != nil {
		return 0, err
	}
	st.loadLink = growZero(st.loadLink, st.nl)
	st.loadSrc = growZero(st.loadSrc, st.nn)
	st.loadDst = growZero(st.loadDst, st.nn)
	bound := 0
	for _, p := range paths {
		for _, l := range p.Links {
			st.loadLink[l]++
			if st.loadLink[l] > bound {
				bound = st.loadLink[l]
			}
		}
		st.loadSrc[p.Src]++
		if st.loadSrc[p.Src] > bound {
			bound = st.loadSrc[p.Src]
		}
		st.loadDst[p.Dst]++
		if st.loadDst[p.Dst] > bound {
			bound = st.loadDst[p.Dst]
		}
	}
	return bound, nil
}

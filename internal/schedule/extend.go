package schedule

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
)

// Extend adds requests to an existing schedule without recomputing it: new
// requests are first-fit packed into the existing configurations and new
// slots are appended only when nothing fits. This serves the paper's
// "parametrically known at compile time" case — a pattern whose shape is
// known but whose exact members depend on a parameter resolved late in
// compilation (or at load time): the compiler schedules the common part
// once and extends it cheaply per parameter value.
//
// The input schedule is not modified. Duplicates of requests already
// scheduled conflict with themselves and get fresh slots, like any other
// conflicting request.
func Extend(r *Result, extra request.Set) (*Result, error) {
	if err := extra.Validate(r.Topology); err != nil {
		return nil, err
	}
	configs := make([]request.Set, r.Degree())
	occs := make([]*network.Occupancy, r.Degree())
	for k, cfg := range r.Configs {
		configs[k] = cfg.Clone()
		occs[k] = network.NewOccupancy()
		for _, req := range cfg {
			p, err := network.CachedRoute(r.Topology, req.Src, req.Dst)
			if err != nil {
				return nil, fmt.Errorf("schedule: extend: %w", err)
			}
			occs[k].Add(p)
		}
	}
	for _, req := range extra {
		p, err := network.CachedRoute(r.Topology, req.Src, req.Dst)
		if err != nil {
			return nil, fmt.Errorf("schedule: extend: %w", err)
		}
		placed := false
		for k := range configs {
			if occs[k].CanAdd(p) {
				occs[k].Add(p)
				configs[k] = append(configs[k], req)
				placed = true
				break
			}
		}
		if !placed {
			occ := network.NewOccupancy()
			occ.Add(p)
			occs = append(occs, occ)
			configs = append(configs, request.Set{req})
		}
	}
	return newResult(r.Algorithm+"+extend", r.Topology, configs), nil
}

package schedule

import (
	"fmt"

	"repro/internal/request"
)

// Extend adds requests to an existing schedule without recomputing it: new
// requests are first-fit packed into the existing configurations and new
// slots are appended only when nothing fits. This serves the paper's
// "parametrically known at compile time" case — a pattern whose shape is
// known but whose exact members depend on a parameter resolved late in
// compilation (or at load time): the compiler schedules the common part
// once and extends it cheaply per parameter value.
//
// The input schedule is not modified and must be valid (no empty
// configurations). Duplicates of requests already scheduled conflict with
// themselves and get fresh slots, like any other conflicting request.
// Extend runs on the bitset incremental structure; OracleExtend is the
// retained map-based original it is differentially tested against.
func Extend(r *Result, extra request.Set) (*Result, error) {
	if err := extra.Validate(r.Topology); err != nil {
		return nil, err
	}
	inc, err := NewIncremental(r)
	if err != nil {
		return nil, fmt.Errorf("schedule: extend: %w", err)
	}
	for _, req := range extra {
		if _, err := inc.Insert(req); err != nil {
			return nil, fmt.Errorf("schedule: extend: %w", err)
		}
	}
	return inc.Detach(r.Algorithm + "+extend"), nil
}

package schedule

import "fmt"

// ParseScheduler resolves a scheduling-algorithm name to its implementation.
// The names match the -alg flags of the cmd/ tools and the compile service's
// alg parameter: greedy, coloring, aapc, combined, combined-seq, exact. An
// empty name selects the compiler's default, the paper's combined algorithm.
// (Moved here from internal/cliutil so that low-level packages can share
// cliutil without importing the scheduler stack.)
func ParseScheduler(name string) (Scheduler, error) {
	switch name {
	case "", "combined":
		return Combined{}, nil
	case "combined-seq":
		return Combined{Sequential: true}, nil
	case "greedy":
		return Greedy{}, nil
	case "coloring":
		return Coloring{}, nil
	case "aapc":
		return OrderedAAPC{}, nil
	case "exact":
		return Exact{}, nil
	default:
		return nil, fmt.Errorf("schedule: unknown scheduler %q (want greedy, coloring, aapc, combined, combined-seq or exact)", name)
	}
}

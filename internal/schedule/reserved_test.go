package schedule_test

import (
	"errors"
	"testing"

	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestSlotWindowValidate(t *testing.T) {
	cases := []struct {
		w  schedule.SlotWindow
		ok bool
	}{
		{schedule.SlotWindow{Frame: 8, Lo: 0, Hi: 2}, true},
		{schedule.SlotWindow{Frame: 8, Lo: 6, Hi: 8}, true},
		{schedule.SlotWindow{Frame: 1, Lo: 0, Hi: 1}, true},
		{schedule.SlotWindow{Frame: 0, Lo: 0, Hi: 0}, false},
		{schedule.SlotWindow{Frame: 8, Lo: -1, Hi: 2}, false},
		{schedule.SlotWindow{Frame: 8, Lo: 2, Hi: 2}, false},
		{schedule.SlotWindow{Frame: 8, Lo: 4, Hi: 9}, false},
	}
	for _, c := range cases {
		err := c.w.Validate()
		if (err == nil) != c.ok {
			t.Errorf("window %+v: err=%v, want ok=%v", c.w, err, c.ok)
		}
	}
}

func TestScheduleReservedComposition(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	reserved := request.Set{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	background := request.Set{{Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 8, Dst: 9}}
	w := schedule.SlotWindow{Frame: 6, Lo: 2, Hi: 4}

	res, err := schedule.ScheduleReserved(torus, schedule.Combined{}, reserved, background, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Configs); got != w.Frame {
		t.Fatalf("frame length = %d, want %d", got, w.Frame)
	}
	if err := schedule.ValidateReserved(res, reserved, background, w); err != nil {
		t.Fatal(err)
	}
	// Every reserved pair's slot index must land inside the window.
	for _, q := range reserved {
		k, ok := res.Slot[q]
		if !ok {
			t.Fatalf("reserved request %v missing from slot index", q)
		}
		if k < w.Lo || k >= w.Hi {
			t.Errorf("reserved request %v in slot %d, outside window [%d,%d)", q, k, w.Lo, w.Hi)
		}
	}
}

func TestScheduleReservedEmptyBackground(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	reserved := request.Set{{Src: 0, Dst: 1}}
	w := schedule.SlotWindow{Frame: 4, Lo: 1, Hi: 2}
	res, err := schedule.ScheduleReserved(torus, schedule.Combined{}, reserved, nil, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.ValidateReserved(res, reserved, nil, w); err != nil {
		t.Fatal(err)
	}
	if res.Slot[reserved[0]] != w.Lo {
		t.Errorf("reserved slot = %d, want %d", res.Slot[reserved[0]], w.Lo)
	}
}

func TestScheduleReservedOverflowErrors(t *testing.T) {
	// On a 1×4 linear array every pair sharing a link conflicts, so a fan
	// of requests out of node 0 needs as many slots as requests.
	lin := topology.NewLinear(4)
	fan := request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}

	_, err := schedule.ScheduleReserved(lin, schedule.Combined{}, fan, nil,
		schedule.SlotWindow{Frame: 4, Lo: 0, Hi: 2})
	if !errors.Is(err, schedule.ErrReservedOverflow) {
		t.Errorf("reserved overflow: err = %v, want ErrReservedOverflow", err)
	}

	_, err = schedule.ScheduleReserved(lin, schedule.Combined{},
		request.Set{{Src: 3, Dst: 2}}, fan,
		schedule.SlotWindow{Frame: 3, Lo: 0, Hi: 1})
	if !errors.Is(err, schedule.ErrBackgroundOverflow) {
		t.Errorf("background overflow: err = %v, want ErrBackgroundOverflow", err)
	}
}

func TestValidateReservedCatchesViolations(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	reserved := request.Set{{Src: 0, Dst: 1}}
	background := request.Set{{Src: 4, Dst: 5}}
	w := schedule.SlotWindow{Frame: 4, Lo: 0, Hi: 2}
	res, err := schedule.ScheduleReserved(torus, schedule.Combined{}, reserved, background, w)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong frame length.
	short := *res
	short.Configs = res.Configs[:3]
	if schedule.ValidateReserved(&short, reserved, background, w) == nil {
		t.Error("truncated frame passed validation")
	}
	// Background request claimed as reserved.
	if schedule.ValidateReserved(res, background, reserved, w) == nil {
		t.Error("swapped request sets passed validation")
	}
	// A request missing entirely.
	if schedule.ValidateReserved(res, reserved, request.Set{{Src: 4, Dst: 5}, {Src: 8, Dst: 9}}, w) == nil {
		t.Error("missing background request passed validation")
	}
}

// TestReservedDeliveryInvariance is the schedule-level half of the QoS
// guarantee: the reserved set's simulated delivery times are identical
// with and without background load, because the frame length and the
// reserved slots are fixed by the window, not by the traffic mix.
func TestReservedDeliveryInvariance(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	reserved := request.Set{{Src: 0, Dst: 1}, {Src: 9, Dst: 10}, {Src: 18, Dst: 19}}
	background := request.Set{
		{Src: 32, Dst: 40}, {Src: 33, Dst: 41}, {Src: 34, Dst: 42},
		{Src: 35, Dst: 43}, {Src: 36, Dst: 44}, {Src: 37, Dst: 45},
	}
	w := schedule.SlotWindow{Frame: 10, Lo: 3, Hi: 5}
	msgs := []sim.Message{
		{Src: 0, Dst: 1, Flits: 17},
		{Src: 9, Dst: 10, Flits: 5},
		{Src: 18, Dst: 19, Flits: 29},
	}

	solo, err := schedule.ScheduleReserved(torus, schedule.Combined{}, reserved, nil, w)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := schedule.ScheduleReserved(torus, schedule.Combined{}, reserved, background, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.ValidateReserved(loaded, reserved, background, w); err != nil {
		t.Fatal(err)
	}

	outSolo, err := sim.RunCompiled(solo, msgs)
	if err != nil {
		t.Fatal(err)
	}
	outLoaded, err := sim.RunCompiled(loaded, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		if outSolo.Finish[i] != outLoaded.Finish[i] {
			t.Errorf("message %d delivery moved under load: solo %d, loaded %d",
				i, outSolo.Finish[i], outLoaded.Finish[i])
		}
	}
}

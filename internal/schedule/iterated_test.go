package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestIteratedGreedyNeverWorseThanCombined(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		set, err := patterns.Random(rng, 64, 300+trial*400)
		if err != nil {
			t.Fatal(err)
		}
		comb, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		it, err := schedule.IteratedGreedy{Restarts: 16}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := it.Validate(set); err != nil {
			t.Fatal(err)
		}
		if it.Degree() > comb.Degree() {
			t.Errorf("trial %d: iterated %d worse than combined %d", trial, it.Degree(), comb.Degree())
		}
	}
}

func TestIteratedGreedyFindsFig3Optimum(t *testing.T) {
	lin := topology.NewLinear(5)
	reqs := request.Set{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}, {Src: 2, Dst: 4}}
	res, err := schedule.IteratedGreedy{Restarts: 64}.Schedule(lin, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 2 {
		t.Errorf("degree = %d, want the optimal 2", res.Degree())
	}
}

func TestIteratedGreedyDeterministic(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(5))
	set, err := patterns.Random(rng, 64, 500)
	if err != nil {
		t.Fatal(err)
	}
	a, err := schedule.IteratedGreedy{Restarts: 8, Seed: 3}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.IteratedGreedy{Restarts: 8, Seed: 3}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degree() != b.Degree() {
		t.Error("same seed produced different degrees")
	}
}

func TestOptimizeSlotOrder(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// Two independent circuits forced into different slots by a shared
	// source, with very different message lengths.
	set := request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}
	res, err := schedule.Greedy{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 2 {
		t.Fatalf("degree %d, want 2", res.Degree())
	}
	flits := map[request.Request]int{
		set[0]: 1,
		set[1]: 100, // the long message should get slot 0
	}
	opt := schedule.OptimizeSlotOrder(res, flits)
	if err := opt.Validate(set); err != nil {
		t.Fatal(err)
	}
	if opt.Slot[set[1]] != 0 {
		t.Errorf("long message in slot %d, want 0", opt.Slot[set[1]])
	}
	// Completion improves by exactly the slot shift when the long message
	// started in slot 1.
	if res.Slot[set[1]] == 1 {
		before := res.Slot[set[1]] + 1 + 99*2
		after := 0 + 1 + 99*2
		if before-after != 1 {
			t.Fatalf("expected a 1-slot gain, got %d", before-after)
		}
	}
}

func TestOptimizeSlotOrderSingleSlotNoop(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := request.Set{{Src: 0, Dst: 1}}
	res, err := schedule.Greedy{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	if got := schedule.OptimizeSlotOrder(res, nil); got != res {
		t.Error("single-slot schedule should be returned unchanged")
	}
}

func TestOptimizeSlotOrderPreservesValidity(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	res, err := schedule.OrderedAAPC{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	flits := map[request.Request]int{}
	rng := rand.New(rand.NewSource(1))
	for _, r := range set {
		flits[r] = 1 + rng.Intn(64)
	}
	opt := schedule.OptimizeSlotOrder(res, flits)
	if err := opt.Validate(set); err != nil {
		t.Fatal(err)
	}
	if opt.Degree() != res.Degree() {
		t.Error("slot reordering changed the degree")
	}
	// Max flits per slot must be non-increasing.
	prev := 1 << 30
	for _, cfg := range opt.Configs {
		max := 0
		for _, r := range cfg {
			if flits[r] > max {
				max = flits[r]
			}
		}
		if max > prev {
			t.Fatal("slots not ordered by descending longest message")
		}
		prev = max
	}
}

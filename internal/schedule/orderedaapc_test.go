package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// TestOrderedAAPCAllToAllBound reproduces the paper's key dense-pattern
// result: on the 8x8 torus, the ordered AAPC algorithm schedules the full
// all-to-all pattern (4032 connections) in exactly N^3/8 = 64 slots, the
// link-capacity optimum for balanced-tie routing being 63-64.
func TestOrderedAAPCAllToAllBound(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	res, err := schedule.OrderedAAPC{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(set); err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 64 {
		t.Errorf("all-to-all degree = %d, want 64", res.Degree())
	}
}

// TestOrderedAAPCDenseCap verifies the section 3.3 guarantee: no pattern
// needs more slots than the AAPC decomposition itself, because requests are
// scheduled in AAPC-phase order.
func TestOrderedAAPCDenseCap(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3000, 3600, 4032} {
		set, err := patterns.Random(rng, 64, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := schedule.OrderedAAPC{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degree() > 64 {
			t.Errorf("n=%d: ordered AAPC degree %d exceeds the 64-phase cap", n, res.Degree())
		}
	}
}

// TestOrderedAAPCRankingHelps verifies that scheduling high-utilization
// phases first (the Fig. 5 ranking) never loses to the unranked ordering on
// the sparse random patterns where ranking matters most, on average.
func TestOrderedAAPCRankingBothValid(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(6))
	sumRanked, sumUnranked := 0, 0
	for i := 0; i < 12; i++ {
		set, err := patterns.Random(rng, 64, 800)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := schedule.OrderedAAPC{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := r1.Validate(set); err != nil {
			t.Fatal(err)
		}
		r2, err := schedule.OrderedAAPC{DisableRanking: true}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := r2.Validate(set); err != nil {
			t.Fatal(err)
		}
		sumRanked += r1.Degree()
		sumUnranked += r2.Degree()
	}
	t.Logf("ranked avg %.1f, unranked avg %.1f", float64(sumRanked)/12, float64(sumUnranked)/12)
}

func TestOrderedAAPCGroupsPhaseMembersTogether(t *testing.T) {
	// Requests that share an AAPC phase are conflict-free and must land in
	// a common configuration when they are the only requests.
	torus := topology.NewTorus(8, 8)
	dec, err := schedule.DecompositionFor(torus)
	if err != nil {
		t.Fatal(err)
	}
	phase := dec.Phases[0]
	res, err := schedule.OrderedAAPC{}.Schedule(torus, phase.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 1 {
		t.Errorf("one AAPC phase scheduled into %d slots, want 1", res.Degree())
	}
}

func TestDecompositionForIsCached(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	a, err := schedule.DecompositionFor(torus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.DecompositionFor(topology.NewTorus(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("decomposition not cached per topology name")
	}
}

func TestOrderedAAPCOnNonTorusTopology(t *testing.T) {
	// The generic decomposition path must serve non-torus topologies.
	ring := topology.NewRing(8)
	set := patterns.Ring(8)
	res, err := schedule.OrderedAAPC{}.Schedule(ring, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(set); err != nil {
		t.Fatal(err)
	}
}

func TestCombinedPicksBetter(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{200, 1000, 3600} {
		set, err := patterns.Random(rng, 64, n)
		if err != nil {
			t.Fatal(err)
		}
		col, err := schedule.Coloring{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := schedule.OrderedAAPC{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		comb, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		want := col.Degree()
		if ap.Degree() < want {
			want = ap.Degree()
		}
		if comb.Degree() != want {
			t.Errorf("n=%d: combined degree %d, want min(%d, %d)", n, comb.Degree(), col.Degree(), ap.Degree())
		}
		if err := comb.Validate(set); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCombinedAlgorithmLabel(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res, err := schedule.Combined{}.Schedule(torus, patterns.AllToAll(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "combined(aapc)" && res.Algorithm != "combined(coloring)" {
		t.Errorf("algorithm label %q does not identify the winner", res.Algorithm)
	}
}

func TestExactOptimalOnSmallSets(t *testing.T) {
	lin := topology.NewLinear(6)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		set, err := patterns.Random(rng, 6, 8)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := schedule.Exact{}.Schedule(lin, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Validate(set); err != nil {
			t.Fatal(err)
		}
		lb, err := schedule.LowerBound(lin, set)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Degree() < lb {
			t.Fatalf("exact degree %d below lower bound %d", ex.Degree(), lb)
		}
		for _, s := range []schedule.Scheduler{schedule.Greedy{}, schedule.Coloring{}} {
			h, err := s.Schedule(lin, set)
			if err != nil {
				t.Fatal(err)
			}
			if h.Degree() < ex.Degree() {
				t.Fatalf("%s degree %d beats exact %d on %v", s.Name(), h.Degree(), ex.Degree(), set)
			}
		}
	}
}

func TestExactRefusesLargeSets(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	if _, err := (schedule.Exact{}).Schedule(torus, patterns.AllToAll(64)); err == nil {
		t.Error("exact scheduler accepted 4032 requests")
	}
}

func TestExactEmptySet(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	res, err := schedule.Exact{}.Schedule(torus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 0 {
		t.Errorf("empty exact degree = %d", res.Degree())
	}
}

func TestLowerBoundComponents(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// Source-port bound: one PE sending to 5 others.
	fanout := request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4}, {Src: 0, Dst: 5}}
	lb, err := schedule.LowerBound(torus, fanout)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 5 {
		t.Errorf("fan-out lower bound = %d, want 5", lb)
	}
	// Destination-port bound.
	fanin := request.Set{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}}
	lb, err = schedule.LowerBound(torus, fanin)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 3 {
		t.Errorf("fan-in lower bound = %d, want 3", lb)
	}
	// Link bound: nested intervals on the linear array share the middle
	// link without sharing endpoints.
	lin := topology.NewLinear(8)
	nested := request.Set{{Src: 0, Dst: 7}, {Src: 1, Dst: 6}, {Src: 2, Dst: 5}, {Src: 3, Dst: 4}}
	lb, err = schedule.LowerBound(lin, nested)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 4 {
		t.Errorf("nested-interval lower bound = %d, want 4", lb)
	}
	if _, err := schedule.LowerBound(lin, request.Set{{Src: 0, Dst: 0}}); err == nil {
		t.Error("LowerBound accepted a self-loop")
	}
}

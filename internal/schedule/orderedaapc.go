package schedule

import (
	"fmt"
	"sync"

	"repro/internal/aapc"
	"repro/internal/network"
	"repro/internal/request"
)

// OrderedAAPC is the scheduler of Fig. 5, designed for dense patterns. Every
// request belongs to exactly one phase of a fixed all-to-all (AAPC)
// decomposition of the topology. The algorithm ranks each AAPC phase by the
// total link length of the requests it contains ("schedule the phases with
// higher link utilization first"), reorders the request set so that requests
// of the same phase are adjacent and phases appear in rank order, and then
// runs the greedy scheduler on the reordered list.
type OrderedAAPC struct {
	// Decomposition overrides the AAPC set when non-nil; otherwise one is
	// built (and cached) per topology.
	Decomposition *aapc.Set
	// DisableRanking keeps phases in their natural decomposition order
	// instead of sorting by utilization; used by the ablation benchmarks.
	DisableRanking bool
}

// Name implements Scheduler.
func (OrderedAAPC) Name() string { return "aapc" }

// aapcCache memoizes decompositions per topology so that repeated
// scheduling runs (the Table 1/2 sweeps schedule hundreds of patterns on
// the same 8x8 torus) build the all-to-all set once.
var aapcCache sync.Map // map[string]*aapc.Set keyed by topology name

// DecompositionFor returns the (cached) AAPC decomposition of a topology.
func DecompositionFor(t network.Topology) (*aapc.Set, error) {
	if v, ok := aapcCache.Load(t.Name()); ok {
		return v.(*aapc.Set), nil
	}
	set, err := aapc.Decompose(t)
	if err != nil {
		return nil, err
	}
	aapcCache.Store(t.Name(), set)
	return set, nil
}

// Schedule implements Scheduler.
func (o OrderedAAPC) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	return pooledSchedule(o, t, reqs)
}

func (o OrderedAAPC) scheduleInto(st *CompileState, t network.Topology, reqs request.Set) (*Result, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	set := o.Decomposition
	if set == nil {
		var err error
		set, err = DecompositionFor(t)
		if err != nil {
			return nil, err
		}
	}
	st.bind(t)
	paths, err := st.routes(t, reqs)
	if err != nil {
		return nil, err
	}

	// Lines 1-5 of Fig. 5: accumulate each phase's rank as the total length
	// of the requests mapped to it.
	np := set.NumPhases()
	st.rank = growZero(st.rank, np)
	rank := st.rank
	st.phase = grow(st.phase, len(reqs))
	phase := st.phase
	for i, r := range reqs {
		k, ok := set.PhaseOf(r)
		if !ok {
			return nil, fmt.Errorf("schedule: request %v not in AAPC decomposition of %s", r, t.Name())
		}
		phase[i] = k
		rank[k] += paths[i].Len()
	}

	// Lines 6-7: sort phases by rank and reorder R accordingly. Requests
	// within one phase keep their relative order; that order is irrelevant
	// to the greedy outcome because phase members are mutually
	// conflict-free. The stable insertion sort matches a stable descending
	// comparison sort exactly (phase count is small — O(nodes) — so the
	// quadratic worst case never matters) and keeps this path
	// allocation-free.
	st.order = grow(st.order, np)
	order := st.order
	for i := range order {
		order[i] = i
	}
	if !o.DisableRanking {
		for i := 1; i < len(order); i++ {
			k := order[i]
			j := i - 1
			for j >= 0 && rank[order[j]] < rank[k] {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = k
		}
	}
	st.pos = grow(st.pos, np)
	pos := st.pos
	for i, k := range order {
		pos[k] = i
	}
	// Stable counting sort of the requests by phase position: requests of
	// the same phase keep their relative order, exactly as a stable
	// comparison sort would leave them, in O(n + phases).
	st.pcnt = growZero(st.pcnt, np+1)
	cnt := st.pcnt
	for _, k := range phase {
		cnt[pos[k]+1]++
	}
	for p := 1; p <= np; p++ {
		cnt[p] += cnt[p-1]
	}
	st.reordered = grow(st.reordered, len(reqs))
	st.rpaths = grow(st.rpaths, len(reqs))
	reordered, rpaths := st.reordered, st.rpaths
	for j := range reqs {
		p := pos[phase[j]]
		reordered[cnt[p]] = reqs[j]
		rpaths[cnt[p]] = paths[j]
		cnt[p]++
	}

	// Line 8: greedy on the reordered request list.
	st.greedyConfigs(reordered, rpaths)
	return st.finish("aapc", t), nil
}

package schedule

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
)

// Incremental keeps a compiled schedule alive as a mutable structure — one
// occupancy bitset and one member list per time slot — so circuits can be
// evicted and reinserted without rebuilding the conflict graph or
// rescheduling from scratch. It is the engine behind delta.Session (pattern
// streams that drift between compiles) and Extend (parametric patterns
// resolved late).
//
// Mutations follow exactly the deterministic rules of the delta patcher:
// removals take the lowest-slot occurrence first, insertions are first-fit
// over non-empty slots in slot order and open a new slot only when nothing
// fits, and Result compacts empty slots away preserving order. A batch
// Update therefore produces byte-identical schedules to
// delta.Patch applied to the same base on the same topology
// (TestIncrementalMatchesPatch); the difference is cost — Update touches
// O(diff × degree) words and allocates nothing once warm.
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	topo  network.Topology
	nl    int
	nn    int
	words int // occupancy words per slot

	slots   int           // slot lanes, including ones emptied mid-batch
	occ     []uint64      // slots × words resource occupancy
	members []request.Set // per-slot circuits, in insertion order
	total   int           // live circuits across all slots

	res Result // arena for Result

	// Update scratch, reused across batches.
	removeLeft map[request.Request]int
	added      request.Set
}

// NewIncremental builds the live structure from a compiled schedule. The
// base is not retained or modified. It fails if a member cannot be routed
// on the base's topology or a configuration is internally conflicting
// (i.e. the base is corrupt).
func NewIncremental(base *Result) (*Incremental, error) {
	inc := &Incremental{}
	if err := inc.Reset(base); err != nil {
		return nil, err
	}
	return inc, nil
}

// Reset rebinds the structure to a new base schedule, reusing all memory.
func (inc *Incremental) Reset(base *Result) error {
	if base == nil {
		return fmt.Errorf("schedule: incremental: nil base schedule")
	}
	t := base.Topology
	inc.topo = t
	inc.nl, inc.nn = t.NumLinks(), t.NumNodes()
	inc.words = (inc.nl + 2*inc.nn + 63) / 64
	inc.slots = len(base.Configs)
	inc.occ = growZero(inc.occ, inc.slots*inc.words)
	if cap(inc.members) < inc.slots {
		members := make([]request.Set, inc.slots)
		copy(members, inc.members[:cap(inc.members)])
		inc.members = members
	}
	inc.members = inc.members[:inc.slots]
	inc.total = 0
	for k, cfg := range base.Configs {
		inc.members[k] = append(inc.members[k][:0], cfg...)
		for _, q := range cfg {
			p, err := network.CachedRoute(t, q.Src, q.Dst)
			if err != nil {
				return fmt.Errorf("schedule: incremental: request %v: %w", q, err)
			}
			if !inc.canAdd(k, p) {
				return fmt.Errorf("schedule: incremental: config %d has conflicting request %v", k, q)
			}
			inc.add(k, p)
		}
		inc.total += len(cfg)
	}
	return nil
}

// Per-slot occupancy over the flat bitset; resource numbering matches
// network.BitOccupancy (links, then sources, then destinations).

func (inc *Incremental) slotBits(k int) []uint64 {
	return inc.occ[k*inc.words : (k+1)*inc.words]
}

func (inc *Incremental) canAdd(k int, p network.Path) bool {
	bits := inc.slotBits(k)
	src, dst := inc.nl+int(p.Src), inc.nl+inc.nn+int(p.Dst)
	if bits[src>>6]&(1<<uint(src&63)) != 0 || bits[dst>>6]&(1<<uint(dst&63)) != 0 {
		return false
	}
	for _, l := range p.Links {
		if bits[int(l)>>6]&(1<<uint(int(l)&63)) != 0 {
			return false
		}
	}
	return true
}

func (inc *Incremental) add(k int, p network.Path) {
	bits := inc.slotBits(k)
	src, dst := inc.nl+int(p.Src), inc.nl+inc.nn+int(p.Dst)
	bits[src>>6] |= 1 << uint(src&63)
	bits[dst>>6] |= 1 << uint(dst&63)
	for _, l := range p.Links {
		bits[int(l)>>6] |= 1 << uint(int(l)&63)
	}
}

func (inc *Incremental) unset(k int, p network.Path) {
	bits := inc.slotBits(k)
	src, dst := inc.nl+int(p.Src), inc.nl+inc.nn+int(p.Dst)
	bits[src>>6] &^= 1 << uint(src&63)
	bits[dst>>6] &^= 1 << uint(dst&63)
	for _, l := range p.Links {
		bits[int(l)>>6] &^= 1 << uint(int(l)&63)
	}
}

// Len returns the number of live circuits.
func (inc *Incremental) Len() int { return inc.total }

// Degree returns the multiplexing degree: the number of non-empty slots.
func (inc *Incremental) Degree() int {
	d := 0
	for _, m := range inc.members {
		if len(m) > 0 {
			d++
		}
	}
	return d
}

// Topology returns the topology the structure schedules on.
func (inc *Incremental) Topology() network.Topology { return inc.topo }

// Remove evicts one occurrence of q, taking the lowest slot that holds it
// (the same occurrence a batch diff would evict). Within one conflict-free
// configuration circuits are resource-disjoint, so the eviction releases
// exactly q's resources. It reports whether q was present.
func (inc *Incremental) Remove(q request.Request) bool {
	for k := 0; k < inc.slots; k++ {
		m := inc.members[k]
		for i, have := range m {
			if have != q {
				continue
			}
			p, err := network.CachedRoute(inc.topo, q.Src, q.Dst)
			if err != nil {
				return false // unroutable requests can never have been inserted
			}
			inc.unset(k, p)
			inc.members[k] = append(m[:i], m[i+1:]...)
			inc.total--
			return true
		}
	}
	return false
}

// Insert places q into the first non-empty slot whose resources are free,
// opening a new slot when none fits, and returns the slot lane it landed
// in. Slots emptied earlier in the current batch are skipped, mirroring the
// delta patcher, which drops empty configurations before inserting.
func (inc *Incremental) Insert(q request.Request) (int, error) {
	p, err := network.CachedRoute(inc.topo, q.Src, q.Dst)
	if err != nil {
		return 0, fmt.Errorf("schedule: incremental: request %v: %w", q, err)
	}
	for k := 0; k < inc.slots; k++ {
		if len(inc.members[k]) == 0 {
			continue
		}
		if inc.canAdd(k, p) {
			inc.add(k, p)
			inc.members[k] = append(inc.members[k], q)
			inc.total++
			return k, nil
		}
	}
	k := inc.newSlot()
	inc.add(k, p)
	inc.members[k] = append(inc.members[k], q)
	inc.total++
	return k, nil
}

func (inc *Incremental) newSlot() int {
	inc.slots++
	if cap(inc.members) >= inc.slots {
		inc.members = inc.members[:inc.slots]
		inc.members[inc.slots-1] = inc.members[inc.slots-1][:0]
	} else {
		inc.members = append(inc.members, nil)
	}
	need := inc.slots * inc.words
	if cap(inc.occ) >= need {
		inc.occ = inc.occ[:need]
		clear(inc.occ[need-inc.words:])
	} else {
		inc.occ = append(inc.occ, make([]uint64, inc.words)...)
	}
	return inc.slots - 1
}

// Update patches the live schedule so it serves exactly the target
// multiset: circuits not in the target are evicted (lowest slot first, in
// slot order), then arrivals are first-fit inserted in target order. It
// returns the diff sizes. The result is byte-identical to
// delta.Patch(base, topo, target) on the structure's own topology.
func (inc *Incremental) Update(target request.Set) (added, removed int, err error) {
	if err := target.Validate(inc.topo); err != nil {
		return 0, 0, fmt.Errorf("schedule: incremental: %w", err)
	}
	// Multiset diff, patchDiff-style: count the live circuits, cancel
	// against the target; leftovers are the evictions, uncancelled target
	// requests the arrivals (in target order).
	if inc.removeLeft == nil {
		inc.removeLeft = make(map[request.Request]int, len(target))
	} else {
		clear(inc.removeLeft)
	}
	for k := 0; k < inc.slots; k++ {
		for _, q := range inc.members[k] {
			inc.removeLeft[q]++
		}
	}
	inc.added = inc.added[:0]
	for _, q := range target {
		if inc.removeLeft[q] > 0 {
			inc.removeLeft[q]--
		} else {
			inc.added = append(inc.added, q)
		}
	}
	// Eviction sweep in slot order, preserving member order of survivors.
	for k := 0; k < inc.slots; k++ {
		m := inc.members[k]
		w := 0
		for _, q := range m {
			if inc.removeLeft[q] > 0 {
				inc.removeLeft[q]--
				p, rerr := network.CachedRoute(inc.topo, q.Src, q.Dst)
				if rerr != nil {
					return 0, 0, fmt.Errorf("schedule: incremental: request %v: %w", q, rerr)
				}
				inc.unset(k, p)
				inc.total--
				removed++
				continue
			}
			m[w] = q
			w++
		}
		inc.members[k] = m[:w]
	}
	for _, q := range inc.added {
		if _, err := inc.Insert(q); err != nil {
			return 0, 0, err
		}
	}
	return len(inc.added), removed, nil
}

// Result compacts empty slots away (preserving slot order), renumbers, and
// assembles the schedule under the given algorithm name. The returned
// Result is owned by the structure: its configurations alias the live
// member lists and are valid until the next mutation. Persisting callers
// use Detach.
func (inc *Incremental) Result(alg string) *Result {
	j := 0
	for k := 0; k < inc.slots; k++ {
		if len(inc.members[k]) == 0 {
			continue
		}
		if j != k {
			// Swap rather than overwrite so the empty lane keeps its backing
			// array for reuse by a future newSlot.
			inc.members[j], inc.members[k] = inc.members[k], inc.members[j]
			copy(inc.slotBits(j), inc.slotBits(k))
		}
		j++
	}
	inc.slots = j
	inc.members = inc.members[:j]
	inc.occ = inc.occ[:j*inc.words]

	inc.res.Algorithm = alg
	inc.res.Topology = inc.topo
	if j == 0 {
		inc.res.Configs = nil
	} else {
		inc.res.Configs = inc.members
	}
	if inc.res.Slot == nil {
		inc.res.Slot = make(map[request.Request]int, inc.total)
	} else {
		clear(inc.res.Slot)
	}
	for k, c := range inc.res.Configs {
		for _, q := range c {
			inc.res.Slot[q] = k
		}
	}
	return &inc.res
}

// Detach returns an independently owned copy of Result(alg).
func (inc *Incremental) Detach(alg string) *Result {
	return inc.Result(alg).detach()
}

package schedule_test

import (
	"testing"

	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// Allocation pins for the arena core. The bitset scheduler's contract is
// that a warm CompileState compiles with zero heap allocations and a warm
// Incremental patches with zero heap allocations; these tests hold that
// line so a stray append or escaping closure shows up as a test failure,
// not as a latency regression in the service.
//
// testing.AllocsPerRun pins GOMAXPROCS to 1 for the measured runs, so
// Combined{} takes its sequential path (the goroutine race is inherently
// allocating and is bypassed on single-CPU runs by design).

func compileSteadyAllocs(t *testing.T, s schedule.Scheduler, reqs request.Set) float64 {
	t.Helper()
	topo, err := topology.Parse("torus-8x8")
	if err != nil {
		t.Fatal(err)
	}
	st := schedule.NewCompileState()
	for i := 0; i < 3; i++ { // grow the arena and warm the route cache
		if _, err := st.Compile(s, topo, reqs); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(20, func() {
		if _, err := st.Compile(s, topo, reqs); err != nil {
			t.Fatal(err)
		}
	})
}

// TestScheduleSteadyStateAllocs pins CompileState.Compile at zero
// allocations once warm, for every paper scheduler.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := splitmix64(42)
	reqs := randomPattern(&rng, 64, 128)
	cases := []struct {
		name string
		s    schedule.Scheduler
	}{
		{"greedy", schedule.Greedy{}},
		{"coloring", schedule.Coloring{}},
		{"aapc", schedule.OrderedAAPC{}},
		{"combined-seq", schedule.Combined{Sequential: true}},
		{"combined", schedule.Combined{}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if n := compileSteadyAllocs(t, c.s, reqs); n != 0 {
				t.Fatalf("steady-state Compile allocates %.1f per run, want 0", n)
			}
		})
	}
}

// TestIncrementalSteadyStateAllocs pins the live-schedule patch loop —
// Update to a drifted target plus Result — at zero allocations once warm.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	topo, err := topology.Parse("torus-8x8")
	if err != nil {
		t.Fatal(err)
	}
	nn := topo.NumNodes()
	rng := splitmix64(7)
	a := randomPattern(&rng, nn, 128)
	b := append(a[:96:96].Clone(), randomPattern(&rng, nn, 32)...) // 3/4 overlap
	base, err := schedule.Coloring{}.Schedule(topo, a)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := schedule.NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	targets := [2]request.Set{b, a}
	step := func(i int) {
		if _, _, err := inc.Update(targets[i%2]); err != nil {
			t.Fatal(err)
		}
		if got := inc.Result("coloring+delta"); got.Degree() == 0 {
			t.Fatal("patched schedule is empty")
		}
	}
	for i := 0; i < 6; i++ { // settle the slot-lane and scratch capacities
		step(i)
	}
	i := 0
	n := testing.AllocsPerRun(20, func() {
		step(i)
		i++
	})
	if n != 0 {
		t.Fatalf("steady-state Update+Result allocates %.1f per run, want 0", n)
	}
}

// TestLowerBoundSteadyStateAllocs pins the pooled LowerBound entry point.
func TestLowerBoundSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	topo, err := topology.Parse("torus-8x8")
	if err != nil {
		t.Fatal(err)
	}
	rng := splitmix64(11)
	reqs := randomPattern(&rng, topo.NumNodes(), 128)
	if _, err := schedule.LowerBound(topo, reqs); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		if _, err := schedule.LowerBound(topo, reqs); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("steady-state LowerBound allocates %.1f per run, want 0", n)
	}
}

package schedule

import (
	"sort"

	"repro/internal/network"
	"repro/internal/request"
)

// Coloring is the graph-coloring scheduler of Fig. 4. It builds the
// conflict graph, assigns each request the priority
//
//	priority(i) = pathLength(i) / degreeAmongUncolored(i)
//
// ("fewer conflicts and longer connections first"), and repeatedly fills a
// configuration by taking the highest-priority request that does not
// conflict with the configuration built so far. Priorities are recomputed
// as vertices are colored, because degrees are counted only in the
// uncolored subgraph.
type Coloring struct {
	// Priority overrides the priority function when non-nil; used by the
	// ablation benchmarks. It receives the connection's path length and its
	// current degree among uncolored vertices (possibly zero).
	Priority func(pathLen, uncoloredDeg int) float64
}

// Name implements Scheduler.
func (Coloring) Name() string { return "coloring" }

// defaultPriority orders vertices by descending degree in the uncolored
// subgraph (most-constrained first, Welsh-Powell style). The paper's text
// describes the opposite ratio — see PaperRatioPriority — but in our
// implementation that ratio schedules *worse* than plain greedy, while
// degree ordering reproduces the paper's measured relationship (coloring
// consistently below greedy on the Table 1 sweep). The ablation benchmark
// BenchmarkAblationColoringPriority compares both.
func defaultPriority(pathLen, uncoloredDeg int) float64 {
	return float64(uncoloredDeg)
}

// PaperRatioPriority is the literal priority of Fig. 4's description: the
// ratio of the connection's link count to its degree among uncolored
// vertices, larger first ("less conflict connections first"). Vertices with
// no remaining conflicts get an effectively infinite priority.
func PaperRatioPriority(pathLen, uncoloredDeg int) float64 {
	if uncoloredDeg == 0 {
		return float64(pathLen) * 1e12
	}
	return float64(pathLen) / float64(uncoloredDeg)
}

// Schedule implements Scheduler.
func (c Coloring) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	paths, err := reqs.Routes(t)
	if err != nil {
		return nil, err
	}
	prio := c.Priority
	if prio == nil {
		prio = defaultPriority
	}
	g := BuildConflictGraph(t, paths)
	n := g.Len()

	uncoloredDeg := make([]int, n)
	for i := 0; i < n; i++ {
		uncoloredDeg[i] = g.Degree(i)
	}
	colored := make([]bool, n)
	ncset := make([]int, n) // uncolored vertex ids
	for i := range ncset {
		ncset[i] = i
	}

	var configs []request.Set
	blocked := make([]uint64, g.Words())
	for len(ncset) > 0 {
		// Sort the uncolored set by current priority (line 6 of Fig. 4).
		sort.SliceStable(ncset, func(a, b int) bool {
			pa := prio(paths[ncset[a]].Len(), uncoloredDeg[ncset[a]])
			pb := prio(paths[ncset[b]].Len(), uncoloredDeg[ncset[b]])
			if pa != pb {
				return pa > pb
			}
			return ncset[a] < ncset[b]
		})
		// WORK starts as the whole sorted NCSET; coloring a vertex removes
		// its neighbors from WORK. "blocked" accumulates exactly those
		// removed vertices: the union of the colored vertices' adjacency.
		var config request.Set
		inConfig := make([]int, 0, 64)
		rest := ncset[:0]
		clear(blocked)
		for _, v := range ncset {
			if blocked[v/64]&(1<<uint(v%64)) != 0 {
				rest = append(rest, v)
				continue
			}
			inConfig = append(inConfig, v)
			config = append(config, reqs[v])
			colored[v] = true
			g.OrInto(blocked, v)
		}
		// Update degrees in the uncolored subgraph (line 14 of Fig. 4).
		for _, v := range inConfig {
			g.Neighbors(v, func(u int) {
				if !colored[u] {
					uncoloredDeg[u]--
				}
			})
		}
		ncset = rest
		configs = append(configs, config)
	}
	return newResult("coloring", t, configs), nil
}

package schedule

import (
	"slices"

	"repro/internal/network"
	"repro/internal/request"
)

// Coloring is the graph-coloring scheduler of Fig. 4. It builds the
// conflict graph, assigns each request the priority
//
//	priority(i) = pathLength(i) / degreeAmongUncolored(i)
//
// ("fewer conflicts and longer connections first"), and repeatedly fills a
// configuration by taking the highest-priority request that does not
// conflict with the configuration built so far. Priorities are recomputed
// as vertices are colored, because degrees are counted only in the
// uncolored subgraph.
type Coloring struct {
	// Priority overrides the priority function when non-nil; used by the
	// ablation benchmarks. It receives the connection's path length and its
	// current degree among uncolored vertices (possibly zero).
	Priority func(pathLen, uncoloredDeg int) float64
}

// Name implements Scheduler.
func (Coloring) Name() string { return "coloring" }

// The default priority (Priority == nil) orders vertices by descending
// degree in the uncolored subgraph (most-constrained first, Welsh-Powell
// style). The paper's text describes the opposite ratio — see
// PaperRatioPriority — but in our implementation that ratio schedules
// *worse* than plain greedy, while degree ordering reproduces the paper's
// measured relationship (coloring consistently below greedy on the Table 1
// sweep). The ablation benchmark BenchmarkAblationColoringPriority compares
// both. Because the default priority is an integer degree, Schedule
// implements it as a counting sort rather than a comparison sort.

// PaperRatioPriority is the literal priority of Fig. 4's description: the
// ratio of the connection's link count to its degree among uncolored
// vertices, larger first ("less conflict connections first"). Vertices with
// no remaining conflicts get an effectively infinite priority.
func PaperRatioPriority(pathLen, uncoloredDeg int) float64 {
	if uncoloredDeg == 0 {
		return float64(pathLen) * 1e12
	}
	return float64(pathLen) / float64(uncoloredDeg)
}

// Schedule implements Scheduler.
func (c Coloring) Schedule(t network.Topology, reqs request.Set) (*Result, error) {
	return pooledSchedule(c, t, reqs)
}

func (c Coloring) scheduleInto(st *CompileState, t network.Topology, reqs request.Set) (*Result, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	st.bind(t)
	paths, err := st.routes(t, reqs)
	if err != nil {
		return nil, err
	}
	g := st.buildGraph(paths)
	n := g.Len()

	st.uncoloredDeg = grow(st.uncoloredDeg, n)
	uncoloredDeg := st.uncoloredDeg
	for i := 0; i < n; i++ {
		uncoloredDeg[i] = g.Degree(i)
	}
	st.colored = growZero(st.colored, n)
	colored := st.colored

	st.resetConfigs(n)
	st.blocked = grow(st.blocked, g.Words())
	blocked := st.blocked
	st.cand = grow(st.cand, n)
	st.ordered = grow(st.ordered, n)
	st.inConfig = grow(st.inConfig, n)
	ordered := st.ordered
	var cnt []int      // degree histogram for the default priority
	var keys []float64 // per-vertex priorities for custom functions
	if c.Priority == nil {
		st.cnt = growZero(st.cnt, n+1)
		cnt = st.cnt
	} else {
		st.keys = grow(st.keys, n)
		keys = st.keys
	}
	for remaining := n; remaining > 0; {
		// Sort the uncolored set by current priority (line 6 of Fig. 4),
		// ties broken by ascending vertex id so the order is total and any
		// correct sort yields the same permutation. The default
		// descending-degree priority sorts by counting: a stable bucket
		// pass over the ascending-id candidate list lands each degree
		// class in id order.
		cand := st.cand[:0]
		for v := 0; v < n; v++ {
			if !colored[v] {
				cand = append(cand, v)
			}
		}
		round := cand
		if c.Priority == nil {
			maxd := 0
			for _, v := range cand {
				d := uncoloredDeg[v]
				cnt[d]++
				if d > maxd {
					maxd = d
				}
			}
			start := 0
			for d := maxd; d >= 0; d-- {
				size := cnt[d]
				cnt[d] = start
				start += size
			}
			round = ordered[:len(cand)]
			for _, v := range cand {
				d := uncoloredDeg[v]
				round[cnt[d]] = v
				cnt[d]++
			}
			for d := 0; d <= maxd; d++ {
				cnt[d] = 0
			}
		} else {
			for _, v := range cand {
				keys[v] = c.Priority(paths[v].Len(), uncoloredDeg[v])
			}
			slices.SortFunc(round, func(a, b int) int {
				switch {
				case keys[a] > keys[b]:
					return -1
				case keys[a] < keys[b]:
					return 1
				default:
					return a - b
				}
			})
		}
		// WORK starts as the whole sorted NCSET; coloring a vertex removes
		// its neighbors from WORK. "blocked" accumulates exactly those
		// removed vertices: the union of the colored vertices' adjacency.
		inConfig := st.inConfig[:0]
		clear(blocked)
		st.beginConfig()
		for _, v := range round {
			if blocked[v/64]&(1<<uint(v%64)) != 0 {
				continue
			}
			inConfig = append(inConfig, v)
			st.push(reqs[v])
			colored[v] = true
			g.OrInto(blocked, v)
		}
		// Update degrees in the uncolored subgraph (line 14 of Fig. 4).
		for _, v := range inConfig {
			g.Neighbors(v, func(u int) {
				if !colored[u] {
					uncoloredDeg[u]--
				}
			})
		}
		remaining -= len(inConfig)
		st.endConfig()
	}
	return st.finish("coloring", t), nil
}

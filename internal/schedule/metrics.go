package schedule

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Metrics quantifies how well a schedule uses the multiplexed network, the
// quality dimension behind the paper's "bandwidth will be lost due to the
// unused time slots" argument.
type Metrics struct {
	// Degree is the multiplexing degree.
	Degree int
	// Requests is the number of scheduled connections.
	Requests int
	// SlotOccupancy[k] is the number of connections established in slot k.
	SlotOccupancy []int
	// MeanOccupancy is the average connections per slot.
	MeanOccupancy float64
	// LinkUtilization is the fraction of (directed link, slot) pairs
	// carrying a circuit.
	LinkUtilization float64
	// PortUtilization is the fraction of (PE injection port, slot) pairs
	// in use; by symmetry of (src, dst) it equals the ejection figure.
	PortUtilization float64
	// LowerBound is the resource lower bound of the scheduled set, so
	// Slack = Degree - LowerBound reports the heuristic gap certificate.
	LowerBound int
}

// Slack returns Degree - LowerBound, an upper bound on how far the
// schedule can be from optimal.
func (m Metrics) Slack() int { return m.Degree - m.LowerBound }

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("degree=%d (lb %d, slack %d) requests=%d occupancy=%.1f/slot links=%.1f%% ports=%.1f%%",
		m.Degree, m.LowerBound, m.Slack(), m.Requests, m.MeanOccupancy,
		100*m.LinkUtilization, 100*m.PortUtilization)
}

// ComputeMetrics measures a schedule.
func ComputeMetrics(r *Result) (Metrics, error) {
	m := Metrics{Degree: r.Degree()}
	if m.Degree == 0 {
		return m, nil
	}
	t := r.Topology
	linkSlots := 0
	m.SlotOccupancy = make([]int, m.Degree)
	for k, cfg := range r.Configs {
		m.SlotOccupancy[k] = len(cfg)
		m.Requests += len(cfg)
		for _, req := range cfg {
			p, err := network.CachedRoute(t, req.Src, req.Dst)
			if err != nil {
				return Metrics{}, err
			}
			linkSlots += p.Len()
		}
	}
	m.MeanOccupancy = float64(m.Requests) / float64(m.Degree)
	m.LinkUtilization = float64(linkSlots) / float64(t.NumLinks()*m.Degree)
	m.PortUtilization = float64(m.Requests) / float64(t.NumNodes()*m.Degree)

	// Re-derive the request set for the lower bound.
	flat := r.Configs[0][:0:0]
	for _, cfg := range r.Configs {
		flat = append(flat, cfg...)
	}
	lb, err := LowerBound(t, flat)
	if err != nil {
		return Metrics{}, err
	}
	m.LowerBound = lb
	return m, nil
}

// OccupancyHistogram returns slot occupancies sorted descending, for
// reports that show how full each configuration is.
func (m Metrics) OccupancyHistogram() []int {
	out := append([]int(nil), m.SlotOccupancy...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// TestCliqueBoundSometimesTightens scans patterns whose resource bound
// falls short of the achieved degree and reports where the clique bound
// closes part of the gap; soundness (clique <= achieved) is asserted on
// every instance.
func TestCliqueBoundSometimesTightens(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	shuffle, err := patterns.ShuffleExchange(64)
	if err != nil {
		t.Fatal(err)
	}
	bitrev, err := patterns.BitReversal(64)
	if err != nil {
		t.Fatal(err)
	}
	sets := map[string]request.Set{
		"hypercube":        hyper,
		"shuffle-exchange": shuffle,
		"bit-reversal":     bitrev,
		"transpose":        patterns.Transpose(8),
	}
	tightened := 0
	for name, set := range sets {
		rb, err := schedule.LowerBound(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := schedule.CliqueBound(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		res, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-16s resource=%d clique=%d achieved=%d", name, rb, cb, res.Degree())
		if cb > res.Degree() {
			t.Fatalf("%s: clique bound %d exceeds achieved degree %d: bound is invalid", name, cb, res.Degree())
		}
		if cb > rb {
			tightened++
		}
	}
	t.Logf("clique bound tightened %d of %d instances", tightened, len(sets))
}

// TestCliqueBoundNeverExceedsAchievedDegree is the soundness property: a
// lower bound can never exceed any valid schedule's degree.
func TestCliqueBoundNeverExceedsAchievedDegree(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		set, err := patterns.Random(rng, 64, 150+trial*300)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := schedule.CliqueBound(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		res, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		if cb > res.Degree() {
			t.Fatalf("trial %d: clique bound %d > achieved degree %d", trial, cb, res.Degree())
		}
	}
}

func TestBestLowerBound(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set, err := patterns.ShuffleExchange(64)
	if err != nil {
		t.Fatal(err)
	}
	best, err := schedule.BestLowerBound(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := schedule.LowerBound(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	if best < rb {
		t.Errorf("combined bound %d below resource bound %d", best, rb)
	}
}

func TestCliqueBoundEmptyAndErrors(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	if b, err := schedule.CliqueBound(torus, nil); err != nil || b != 0 {
		t.Errorf("empty set: %d, %v", b, err)
	}
	if _, err := schedule.CliqueBound(torus, request.Set{{Src: 0, Dst: 0}}); err == nil {
		t.Error("self-loop accepted")
	}
}

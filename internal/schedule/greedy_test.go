package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// TestFigure3GreedyVsOptimal reproduces the paper's Fig. 3: on the 5-node
// linear array, greedy schedules {(0,2), (1,3), (3,4), (2,4)} into 3 time
// slots while the optimal assignment needs only 2.
func TestFigure3GreedyVsOptimal(t *testing.T) {
	lin := topology.NewLinear(5)
	reqs := request.Set{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}, {Src: 2, Dst: 4}}

	g, err := schedule.Greedy{}.Schedule(lin, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	if g.Degree() != 3 {
		t.Errorf("greedy degree = %d, want 3 (Fig. 3a)", g.Degree())
	}
	// The paper's slot assignment: (0,2) and (3,4) share slot 1, (1,3) in
	// slot 2, (2,4) in slot 3.
	if g.Slot[reqs[0]] != g.Slot[reqs[2]] {
		t.Errorf("greedy should put (0,2) and (3,4) in the same slot")
	}

	e, err := schedule.Exact{}.Schedule(lin, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(reqs); err != nil {
		t.Fatal(err)
	}
	if e.Degree() != 2 {
		t.Errorf("optimal degree = %d, want 2 (Fig. 3b)", e.Degree())
	}

	// Reordering the requests lets greedy find the optimum, which is the
	// property the ordered-AAPC algorithm exploits.
	reordered := request.Set{{Src: 0, Dst: 2}, {Src: 2, Dst: 4}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}}
	g2, err := schedule.Greedy{}.Schedule(lin, reordered)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Degree() != 2 {
		t.Errorf("greedy on reordered requests = %d, want 2", g2.Degree())
	}
}

func TestGreedySingleRequest(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	reqs := request.Set{{Src: 0, Dst: 5}}
	res, err := schedule.Greedy{}.Schedule(torus, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 1 || res.NumRequests() != 1 {
		t.Errorf("degree=%d requests=%d, want 1/1", res.Degree(), res.NumRequests())
	}
}

func TestGreedyEmptySet(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	res, err := schedule.Greedy{}.Schedule(torus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 0 {
		t.Errorf("empty set degree = %d, want 0", res.Degree())
	}
	if err := res.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyRejectsInvalidRequests(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	if _, err := (schedule.Greedy{}).Schedule(torus, request.Set{{Src: 0, Dst: 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := (schedule.Greedy{}).Schedule(torus, request.Set{{Src: 0, Dst: 99}}); err == nil {
		t.Error("out-of-range request accepted")
	}
}

func TestGreedyDuplicateRequestsLandInDistinctSlots(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	reqs := request.Set{{Src: 0, Dst: 5}, {Src: 0, Dst: 5}, {Src: 0, Dst: 5}}
	res, err := schedule.Greedy{}.Schedule(torus, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree() != 3 {
		t.Errorf("three identical requests need 3 slots, got %d", res.Degree())
	}
	if err := res.Validate(reqs); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMaximalConfigurations(t *testing.T) {
	// Greedy's first configuration must be maximal: no remaining request
	// could have been added to it.
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(7))
	reqs, err := patterns.Random(rng, 64, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Greedy{}.Schedule(torus, reqs)
	if err != nil {
		t.Fatal(err)
	}
	occ := network.NewOccupancy()
	inFirst := make(map[request.Request]bool)
	for _, r := range res.Configs[0] {
		p, _ := torus.Route(r.Src, r.Dst)
		occ.Add(p)
		inFirst[r] = true
	}
	for _, r := range reqs {
		if inFirst[r] {
			continue
		}
		p, _ := torus.Route(r.Src, r.Dst)
		if occ.CanAdd(p) {
			t.Fatalf("request %v fits configuration 0 but was scheduled later", r)
		}
	}
}

// TestAllSchedulersProduceValidSchedules is the central correctness
// property: on a spread of patterns and topologies, every scheduler yields
// a partition into conflict-free configurations with degree >= the resource
// lower bound.
func TestAllSchedulersProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	torus := topology.NewTorus(8, 8)
	hyper, _ := patterns.Hypercube(64)
	shuffle, _ := patterns.ShuffleExchange(64)
	sets := []request.Set{
		patterns.Ring(64),
		patterns.NearestNeighbor2D(8, 8),
		hyper,
		shuffle,
		patterns.Transpose(8),
	}
	for i := 0; i < 4; i++ {
		s, err := patterns.Random(rng, 64, 150+200*i)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, s)
	}
	scheds := []schedule.Scheduler{
		schedule.Greedy{},
		schedule.Coloring{},
		schedule.Coloring{Priority: schedule.PaperRatioPriority},
		schedule.OrderedAAPC{},
		schedule.OrderedAAPC{DisableRanking: true},
		schedule.Combined{},
	}
	for si, set := range sets {
		lb, err := schedule.LowerBound(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range scheds {
			res, err := s.Schedule(torus, set)
			if err != nil {
				t.Fatalf("set %d %s: %v", si, s.Name(), err)
			}
			if err := res.Validate(set); err != nil {
				t.Fatalf("set %d %s: %v", si, s.Name(), err)
			}
			if res.Degree() < lb {
				t.Fatalf("set %d %s: degree %d below lower bound %d", si, s.Name(), res.Degree(), lb)
			}
			if res.NumRequests() != len(set) {
				t.Fatalf("set %d %s: scheduled %d of %d requests", si, s.Name(), res.NumRequests(), len(set))
			}
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	names := map[string]schedule.Scheduler{
		"greedy":   schedule.Greedy{},
		"coloring": schedule.Coloring{},
		"aapc":     schedule.OrderedAAPC{},
		"combined": schedule.Combined{},
		"exact":    schedule.Exact{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

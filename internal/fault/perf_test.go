package fault_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/patterns"
	"repro/internal/topology"
)

// BenchmarkRecompileHypercube64 is the recovery hot path the BENCH_sim row
// fault/recompile/hypercube64 tracks: mask a fresh failure set, reschedule
// the surviving hypercube traffic, lower to switch programs and verify by
// light trace. The masked view is rebuilt per iteration, as it would be for
// a failure the compiler has never seen.
func BenchmarkRecompileHypercube64(b *testing.B) {
	torus := topology.NewTorus(8, 8)
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		b.Fatal(err)
	}
	failset := fault.SetOf(fault.RandomLinkPlan(torus, 1996, 6, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fault.Recompile(fault.NewMasked(torus, failset), hyper, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRecompileAllocBound pins the recovery path's allocation count. The
// path went from ~1730 allocs per recompile to ~110 by lowering schedules
// into flat register tables (switchprog), serving base routes of masked
// views from the shared route cache, and pooling the BFS detour scratch;
// this bound keeps those wins from regressing. The remaining allocations
// are real outputs (the schedule, the program, the per-mask route cache),
// so the bound has ~2x headroom rather than an exact count.
func TestRecompileAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting under -short")
	}
	torus := topology.NewTorus(8, 8)
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	failset := fault.SetOf(fault.RandomLinkPlan(torus, 1996, 6, 0))
	run := func() {
		if _, _, err := fault.Recompile(fault.NewMasked(torus, failset), hyper, nil); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the base-topology route cache and scratch pools
	const bound = 250
	if avg := testing.AllocsPerRun(10, run); avg > bound {
		t.Errorf("fault.Recompile allocates %.0f times per run, bound %d", avg, bound)
	}
}

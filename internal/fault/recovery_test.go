package fault

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

func shiftMsgs(n, stride, flits int) []sim.Message {
	msgs := make([]sim.Message, n)
	for i := 0; i < n; i++ {
		msgs[i] = sim.Message{Src: i, Dst: (i + stride) % n, Flits: flits}
	}
	return msgs
}

func TestRecoverCompiledNoFaults(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msgs := shiftMsgs(64, 9, 32)
	rec, err := RecoverCompiled(torus, msgs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalTime != rec.HealthyTime {
		t.Fatalf("fault-free TotalTime %d != HealthyTime %d", rec.TotalTime, rec.HealthyTime)
	}
	if rec.Delivered != len(msgs) || rec.Lost != 0 || len(rec.Bursts) != 0 {
		t.Fatalf("fault-free recovery off: %+v", rec)
	}
}

// TestRecoverCompiledDelivery is the differential guarantee of the fault
// subsystem: after link failures mid-phase, the recompiled network delivers
// every message that still has a surviving route — only disconnected
// messages may be written off.
func TestRecoverCompiledDelivery(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msgs := shiftMsgs(64, 9, 32)
	plan := RandomLinkPlan(torus, 11, 8, 60)
	rec, err := RecoverCompiled(torus, msgs, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	masked := NewMasked(torus, SetOf(plan))
	for i, m := range msgs {
		_, rerr := masked.Route(network.NodeID(m.Src), network.NodeID(m.Dst))
		deliverable := rerr == nil
		if deliverable && rec.Finish[i] == 0 {
			t.Fatalf("message %d (%d->%d) deliverable but never delivered", i, m.Src, m.Dst)
		}
		if !deliverable {
			if !errors.Is(rerr, network.ErrNoRoute) {
				t.Fatal(rerr)
			}
			if rec.Finish[i] != 0 {
				t.Fatalf("message %d (%d->%d) has no surviving route but finished at %d", i, m.Src, m.Dst, rec.Finish[i])
			}
		}
	}
	if rec.Delivered+rec.Lost != len(msgs) {
		t.Fatalf("Delivered %d + Lost %d != %d", rec.Delivered, rec.Lost, len(msgs))
	}
	if len(rec.Bursts) == 0 || rec.StallSlots == 0 {
		t.Fatalf("faults mid-phase but no recovery episode recorded: %+v", rec)
	}
	if rec.TotalTime <= rec.HealthyTime {
		t.Fatalf("degraded time %d not above healthy %d", rec.TotalTime, rec.HealthyTime)
	}
}

func TestRecoverCompiledNodeLoss(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msgs := shiftMsgs(64, 1, 16)
	plan := []Event{{Slot: 5, Kind: NodeFault, Node: 27}}
	rec, err := RecoverCompiled(torus, msgs, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the two messages touching the dead switch are lost (27->28
	// and 26->27); the rest must be delivered.
	if rec.Lost != 2 {
		t.Fatalf("Lost = %d, want 2", rec.Lost)
	}
	for i := range msgs {
		touches := msgs[i].Src == 27 || msgs[i].Dst == 27
		if touches != (rec.Finish[i] == 0) {
			t.Fatalf("message %d (%d->%d): finish %d", i, msgs[i].Src, msgs[i].Dst, rec.Finish[i])
		}
	}
}

func TestRecoverCompiledFallbackOverlap(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msgs := shiftMsgs(64, 9, 32)
	plan := RandomLinkPlan(torus, 3, 4, 40)
	slow := Options{DetectSlots: 200, CompileSlots: 800}
	without, err := RecoverCompiled(torus, msgs, plan, slow)
	if err != nil {
		t.Fatal(err)
	}
	slow.Fallback = true
	with, err := RecoverCompiled(torus, msgs, plan, slow)
	if err != nil {
		t.Fatal(err)
	}
	if with.FallbackFlits == 0 {
		t.Fatal("fallback enabled but served no flits")
	}
	if with.TotalTime > without.TotalTime {
		t.Fatalf("fallback made recovery slower: %d > %d", with.TotalTime, without.TotalTime)
	}
	if with.Delivered < without.Delivered {
		t.Fatalf("fallback lost deliveries: %d < %d", with.Delivered, without.Delivered)
	}
}

func TestRecoverCompiledDeterministic(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msgs := shiftMsgs(64, 9, 32)
	plan := RandomLinkPlan(torus, 5, 6, 80)
	a, err := RecoverCompiled(torus, msgs, plan, Options{Fallback: true, DetectSlots: 64, CompileSlots: 256})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecoverCompiled(torus, msgs, plan, Options{Fallback: true, DetectSlots: 64, CompileSlots: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical recoveries differ:\n%+v\n%+v", a, b)
	}
}

func TestSimPlanExpansion(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	plan := []Event{
		{Slot: 2, Kind: LinkFault, Link: 5},
		{Slot: 4, Kind: ChannelFault, Link: 6, Channels: 0b11},
		{Slot: 7, Kind: NodeFault, Node: 9},
	}
	evs := SimPlan(torus, plan)
	var incident int
	for id := 0; id < torus.NumLinks(); id++ {
		li := torus.Link(network.LinkID(id))
		if li.From == 9 || li.To == 9 {
			incident++
		}
	}
	if len(evs) != 2+incident {
		t.Fatalf("expanded to %d events, want %d", len(evs), 2+incident)
	}
	if evs[0] != (sim.FaultEvent{Slot: 2, Link: 5}) {
		t.Fatalf("link fault mangled: %+v", evs[0])
	}
	if evs[1] != (sim.FaultEvent{Slot: 4, Link: 6, Mask: 0b11}) {
		t.Fatalf("channel fault mangled: %+v", evs[1])
	}
	for _, e := range evs[2:] {
		li := torus.Link(e.Link)
		if li.From != 9 && li.To != 9 {
			t.Fatalf("node expansion includes unrelated link %d", e.Link)
		}
		if e.Slot != 7 || e.Mask != 0 {
			t.Fatalf("node expansion event wrong: %+v", e)
		}
	}
}

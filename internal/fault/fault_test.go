package fault

import (
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

func TestSetAccumulation(t *testing.T) {
	s := NewSet()
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.FailChannels(3, 0b0011)
	if s.LinkFailed(3) {
		t.Fatal("partial channel failure reported as whole-link")
	}
	if got := s.FailedChannels(3); got != 0b0011 {
		t.Fatalf("FailedChannels = %#x", got)
	}
	s.FailChannels(3, 0b0100)
	if got := s.FailedChannels(3); got != 0b0111 {
		t.Fatalf("accumulated FailedChannels = %#x", got)
	}
	s.FailLink(3)
	if !s.LinkFailed(3) || s.FailedChannels(3) != AllChannels {
		t.Fatal("FailLink did not promote to whole-link failure")
	}
	s.FailNode(7)
	if !s.NodeFailed(7) || s.NodeFailed(8) {
		t.Fatal("node failure state wrong")
	}
	if s.Empty() {
		t.Fatal("non-empty set reports empty")
	}
	// FailChannels with the full mask is a whole-link failure.
	s.FailChannels(9, AllChannels)
	if !s.LinkFailed(9) {
		t.Fatal("AllChannels mask did not fail the link")
	}
}

func TestSetBlocks(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	s := NewSet()
	s.FailNode(5)
	for id := 0; id < torus.NumLinks(); id++ {
		li := torus.Link(network.LinkID(id))
		touches := li.From == 5 || li.To == 5
		if s.Blocks(li) != touches {
			t.Fatalf("link %d (%d->%d): Blocks = %v, want %v", id, li.From, li.To, s.Blocks(li), touches)
		}
	}
	p, err := torus.Route(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSet()
	s2.FailLink(p.Links[0])
	if !s2.BlocksPath(torus, p) {
		t.Fatal("path over failed link not blocked")
	}
	s3 := NewSet()
	s3.FailChannels(p.Links[0], 1)
	if s3.BlocksPath(torus, p) {
		t.Fatal("partially-failed link should not block routing")
	}
}

func TestSetCloneAndString(t *testing.T) {
	s := NewSet()
	s.FailLink(4)
	s.FailChannels(2, 0b10)
	s.FailNode(1)
	c := s.Clone()
	c.FailLink(8)
	if s.LinkFailed(8) {
		t.Fatal("clone aliases original")
	}
	if got, want := s.String(), "L2/0x2,L4,N1"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if NewSet().String() != "no faults" {
		t.Fatal("empty-set String")
	}
}

func TestRandomLinkPlanDeterministic(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	a := RandomLinkPlan(torus, 42, 6, 100)
	b := RandomLinkPlan(torus, 42, 6, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds differ:\n%v\n%v", a, b)
	}
	c := RandomLinkPlan(torus, 43, 6, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the same plan")
	}
	if len(a) != 6 {
		t.Fatalf("plan has %d events, want 6", len(a))
	}
	seen := map[network.LinkID]bool{}
	last := -1
	for _, e := range a {
		if e.Kind != LinkFault {
			t.Fatalf("unexpected kind %v", e.Kind)
		}
		if seen[e.Link] {
			t.Fatalf("duplicate link %d", e.Link)
		}
		seen[e.Link] = true
		if e.Slot < 0 || e.Slot > 100 {
			t.Fatalf("slot %d outside [0, 100]", e.Slot)
		}
		if e.Slot < last {
			t.Fatal("plan not sorted by slot")
		}
		last = e.Slot
	}
	// Requesting more faults than links clamps to the link count.
	small := topology.NewTorus(2, 2)
	if got := len(RandomLinkPlan(small, 1, 1000, 10)); got != small.NumLinks() {
		t.Fatalf("clamped plan has %d events, want %d", got, small.NumLinks())
	}
}

func TestSetOf(t *testing.T) {
	events := []Event{
		{Slot: 3, Kind: LinkFault, Link: 7},
		{Slot: 5, Kind: NodeFault, Node: 2},
		{Slot: 9, Kind: ChannelFault, Link: 11, Channels: 0b101},
	}
	s := SetOf(events)
	if !s.LinkFailed(7) || !s.NodeFailed(2) || s.FailedChannels(11) != 0b101 {
		t.Fatalf("SetOf state wrong: %s", s)
	}
}

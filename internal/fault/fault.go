// Package fault is the failure subsystem of the compiled-communication
// stack: it models link, node and per-channel failures, generates
// deterministic seeded injection schedules, presents a fault-masked view of
// any topology that the schedulers and the switch compiler can recompile
// against unchanged, and quantifies the cost of recovering — the explicit
// recompile-and-reload penalty the compiled approach pays for a network
// change, versus the reservation failures and retries dynamic control pays.
//
// The standing critique of compiled communication is exactly that any
// change to the network, including a failed fiber, invalidates the compiled
// schedule. This package makes that trade-off measurable: RecoverCompiled
// replays a phase up to the failure instant, recompiles the surviving
// traffic on the masked topology (verified by light trace), optionally
// overlaps the recompilation stall with the predetermined AAPC fallback
// (the SWOT-style overlap), and reports degraded degree, lost messages and
// recovery latency. internal/sim's RunFaulted is the dynamic-control
// counterpart; internal/experiments.FaultTable sweeps both.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/network"
)

// Kind classifies a failure.
type Kind int

const (
	// LinkFault takes down one directed inter-switch link (all channels).
	LinkFault Kind = iota
	// NodeFault takes down a whole switch: every link into or out of it,
	// and any circuit originating or terminating at its PE.
	NodeFault
	// ChannelFault takes down a subset of one link's virtual channels (TDM
	// slots or wavelengths); the link survives at reduced capacity.
	ChannelFault
)

func (k Kind) String() string {
	switch k {
	case LinkFault:
		return "link"
	case NodeFault:
		return "node"
	case ChannelFault:
		return "channel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllChannels is the channel mask denoting every virtual channel of a link.
const AllChannels = ^uint64(0)

// Event is one fail-at-slot-T injection: at slot Slot, the named resource
// fails permanently. Events are the unit of deterministic fault schedules —
// a []Event fully describes an experiment's failure history.
type Event struct {
	// Slot is the TDM slot at which the failure manifests.
	Slot int
	// Kind selects which of Link/Node/Channels below is meaningful.
	Kind Kind
	// Link is the failed link (LinkFault, ChannelFault).
	Link network.LinkID
	// Node is the failed switch (NodeFault).
	Node network.NodeID
	// Channels is the failed channel mask (ChannelFault); ignored otherwise.
	Channels uint64
}

func (e Event) String() string {
	switch e.Kind {
	case NodeFault:
		return fmt.Sprintf("slot %d: node %d fails", e.Slot, e.Node)
	case ChannelFault:
		return fmt.Sprintf("slot %d: link %d channels %#x fail", e.Slot, e.Link, e.Channels)
	default:
		return fmt.Sprintf("slot %d: link %d fails", e.Slot, e.Link)
	}
}

// Set is an accumulated failure state: which links are fully down, which
// nodes are down, and which channels of surviving links are down. The
// zero-value Set is not usable; call NewSet.
type Set struct {
	links    map[network.LinkID]uint64 // failed channel mask; AllChannels = whole link
	nodes    map[network.NodeID]bool
	numLink  int // count of fully-failed links (cheap Empty/String)
	numCh    int // count of partially-failed links
	numNodes int
}

// NewSet returns an empty failure set.
func NewSet() *Set {
	return &Set{links: make(map[network.LinkID]uint64), nodes: make(map[network.NodeID]bool)}
}

// FailLink marks a whole link failed.
func (s *Set) FailLink(l network.LinkID) {
	if s.links[l] != AllChannels {
		if _, partial := s.links[l]; partial {
			s.numCh--
		}
		s.numLink++
	}
	s.links[l] = AllChannels
}

// FailChannels marks a subset of a link's channels failed. Accumulates with
// earlier channel failures of the same link; a mask of AllChannels is a
// whole-link failure.
func (s *Set) FailChannels(l network.LinkID, mask uint64) {
	if mask == 0 {
		return
	}
	prev, had := s.links[l]
	next := prev | mask
	if next == AllChannels {
		s.FailLink(l)
		return
	}
	if !had {
		s.numCh++
	}
	s.links[l] = next
}

// FailNode marks a switch failed.
func (s *Set) FailNode(n network.NodeID) {
	if !s.nodes[n] {
		s.numNodes++
	}
	s.nodes[n] = true
}

// Apply folds one injection event into the set (ignoring its slot — a Set
// is the state after every applied event has fired).
func (s *Set) Apply(e Event) {
	switch e.Kind {
	case LinkFault:
		s.FailLink(e.Link)
	case NodeFault:
		s.FailNode(e.Node)
	case ChannelFault:
		s.FailChannels(e.Link, e.Channels)
	}
}

// SetOf builds the failure state after all the given events have fired.
func SetOf(events []Event) *Set {
	s := NewSet()
	for _, e := range events {
		s.Apply(e)
	}
	return s
}

// LinkFailed reports whether the link is fully down.
func (s *Set) LinkFailed(l network.LinkID) bool { return s.links[l] == AllChannels }

// FailedChannels returns the failed channel mask of a link (0 = healthy,
// AllChannels = whole link down).
func (s *Set) FailedChannels(l network.LinkID) uint64 { return s.links[l] }

// NodeFailed reports whether the switch is down.
func (s *Set) NodeFailed(n network.NodeID) bool { return s.nodes[n] }

// Empty reports whether nothing has failed.
func (s *Set) Empty() bool { return s.numLink == 0 && s.numCh == 0 && s.numNodes == 0 }

// Blocks reports whether a link is unusable for routing: the link itself is
// fully down or either endpoint switch is down. Partially-failed links
// still route (at reduced capacity).
func (s *Set) Blocks(li network.LinkInfo) bool {
	return s.LinkFailed(li.ID) || s.nodes[li.From] || s.nodes[li.To]
}

// BlocksPath reports whether a circuit path crosses any failed resource:
// a down endpoint switch, a down transit switch, or a fully-failed link.
func (s *Set) BlocksPath(t network.Topology, p network.Path) bool {
	if s.nodes[p.Src] || s.nodes[p.Dst] {
		return true
	}
	for _, l := range p.Links {
		if s.Blocks(t.Link(l)) {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	out := NewSet()
	for l, m := range s.links {
		out.links[l] = m
	}
	for n := range s.nodes {
		out.nodes[n] = true
	}
	out.numLink, out.numCh, out.numNodes = s.numLink, s.numCh, s.numNodes
	return out
}

// String summarizes the set deterministically (sorted resource ids).
func (s *Set) String() string {
	if s.Empty() {
		return "no faults"
	}
	var parts []string
	if s.numLink > 0 || s.numCh > 0 {
		ids := make([]int, 0, len(s.links))
		for l := range s.links {
			ids = append(ids, int(l))
		}
		sort.Ints(ids)
		for _, id := range ids {
			if m := s.links[network.LinkID(id)]; m == AllChannels {
				parts = append(parts, fmt.Sprintf("L%d", id))
			} else {
				parts = append(parts, fmt.Sprintf("L%d/%#x", id, m))
			}
		}
	}
	if s.numNodes > 0 {
		ids := make([]int, 0, len(s.nodes))
		for n := range s.nodes {
			ids = append(ids, int(n))
		}
		sort.Ints(ids)
		for _, id := range ids {
			parts = append(parts, fmt.Sprintf("N%d", id))
		}
	}
	return strings.Join(parts, ",")
}

// splitmix64 is the SplitMix64 finalizer — the same mixing construction as
// sim.TrialSeed, so fault schedules compose with the sweep engine's
// decorrelated trial seeding.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// stream is a tiny deterministic SplitMix64 generator for injection plans.
type stream struct{ state uint64 }

func (s *stream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return splitmix64(s.state)
}

// intn returns a uniform value in [0, n) from the stream.
func (s *stream) intn(n int) int { return int(s.next() % uint64(n)) }

// RandomLinkPlan derives a reproducible injection schedule from (topology,
// seed): n distinct links, each failing at a slot uniform in [0, maxSlot].
// The plan depends only on the arguments — never on scheduling, worker
// count or call order — and is returned sorted by slot (ties by link id) so
// it can be applied as a timeline.
func RandomLinkPlan(t network.Topology, seed int64, n, maxSlot int) []Event {
	nl := t.NumLinks()
	if n > nl {
		n = nl
	}
	if maxSlot < 0 {
		maxSlot = 0
	}
	rng := &stream{state: uint64(seed)}
	chosen := make(map[int]bool, n)
	events := make([]Event, 0, n)
	for len(events) < n {
		l := rng.intn(nl)
		if chosen[l] {
			continue
		}
		chosen[l] = true
		events = append(events, Event{
			Slot: rng.intn(maxSlot + 1),
			Kind: LinkFault,
			Link: network.LinkID(l),
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Slot != events[j].Slot {
			return events[i].Slot < events[j].Slot
		}
		return events[i].Link < events[j].Link
	})
	return events
}

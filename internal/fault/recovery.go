package fault

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/optics"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/switchprog"
)

// Options configures compiled-mode fault recovery.
type Options struct {
	// Scheduler recompiles the surviving traffic on the masked topology.
	// nil defaults to schedule.Coloring{}: unlike the AAPC-based
	// schedulers it needs no all-to-all decomposition of the degraded
	// network — which may not exist (a dead switch disconnects some
	// pairs) and is expensive to rebuild per failure pattern.
	Scheduler schedule.Scheduler
	// Reconfig prices reloading the recompiled schedule into the switch
	// shift registers; the zero value means core.DefaultReconfigCost.
	Reconfig core.ReconfigCost
	// DetectSlots is the latency between a resource failing and the host
	// learning about it (the network runs blind meanwhile; flits sent into
	// the dead resource during detection are simply lost time).
	DetectSlots int
	// CompileSlots is the host-side recompilation time, in slots.
	CompileSlots int
	// Fallback enables the SWOT-style overlap: while the host recompiles,
	// traffic whose healthy route survives is served by the predetermined
	// all-to-all (AAPC) fallback schedule, one flit per fallback frame, so
	// the stall is not dead time for connected pairs.
	Fallback bool
}

func (o Options) scheduler() schedule.Scheduler {
	if o.Scheduler == nil {
		return schedule.Coloring{}
	}
	return o.Scheduler
}

func (o Options) reconfig() core.ReconfigCost {
	if o.Reconfig == (core.ReconfigCost{}) {
		return core.DefaultReconfigCost
	}
	return o.Reconfig
}

// Burst is one recovery episode: the failure events that fired at one slot
// and what recovering from them cost.
type Burst struct {
	// Slot is the absolute slot at which the burst fired.
	Slot int
	// Faults summarizes the accumulated failure state after the burst.
	Faults string
	// Lost counts messages this burst disconnected for good.
	Lost int
	// Degree is the multiplexing degree of the recompiled schedule
	// (0 when nothing remained to recompile).
	Degree int
	// Stall is the recovery latency: detection + recompilation + register
	// reload, in slots.
	Stall int
	// Verified is the number of circuits the optics light trace confirmed
	// in the recompiled schedule.
	Verified int
	// FallbackFlits is the number of flits the predetermined fallback
	// moved during this burst's stall (0 unless Options.Fallback).
	FallbackFlits int
}

// Recovery reports a compiled-communication phase run through a failure
// plan: the healthy baseline, each recovery episode, and the end-to-end
// degraded outcome.
type Recovery struct {
	// HealthyTime and HealthyDegree describe the fault-free phase.
	HealthyTime   int
	HealthyDegree int
	// Bursts holds one entry per distinct fault slot that fired while
	// traffic was still pending.
	Bursts []Burst
	// Finish is each message's absolute delivery slot (0 = never
	// delivered), indexed like the input messages.
	Finish []int
	// Delivered and Lost partition the messages. Lost counts only
	// messages with no surviving route — the differential guarantee is
	// that everything deliverable is delivered.
	Delivered int
	Lost      int
	// DegradedDegree is the degree of the last recompiled schedule (the
	// healthy degree if no recompilation happened).
	DegradedDegree int
	// StallSlots sums the recovery stalls across bursts.
	StallSlots int
	// FallbackFlits sums the fallback-served flits across bursts.
	FallbackFlits int
	// TotalTime is the slot of the last delivery.
	TotalTime int
}

// Recompile compiles the surviving requests on a masked topology, lowers
// the schedule to switch programs, and verifies every circuit by tracing
// light through the programmed switches. This is the full recovery path a
// real host would run: the light trace is the proof that the degraded
// schedule drives the surviving hardware correctly.
func Recompile(m *Masked, reqs request.Set, sch schedule.Scheduler) (*schedule.Result, *switchprog.Program, error) {
	if sch == nil {
		sch = schedule.Coloring{}
	}
	res, err := sch.Schedule(m, reqs)
	if err != nil {
		return nil, nil, fmt.Errorf("fault: recompile on %s: %w", m.Name(), err)
	}
	prog, err := switchprog.Compile(res)
	if err != nil {
		return nil, nil, fmt.Errorf("fault: lowering recompiled schedule: %w", err)
	}
	if _, err := optics.NewTracer(prog).VerifySchedule(res.Slot); err != nil {
		return nil, nil, fmt.Errorf("fault: light trace of recompiled schedule: %w", err)
	}
	return res, prog, nil
}

// RecoverCompiled runs one compiled communication phase through a failure
// plan. The phase starts on the healthy compiled schedule; at each fault
// slot the run is interrupted, newly disconnected messages are written off,
// the surviving traffic is recompiled on the masked topology (and verified
// by light trace), the clock pays the detect+compile+reload stall —
// optionally overlapped with predetermined-fallback delivery — and the
// remaining flits resume on the degraded schedule.
//
// This is the compiled counterpart of (*sim.Simulator).RunFaulted: the
// dynamic protocol absorbs a failure with retries and reroutes, compiled
// communication pays an explicit recompilation. FaultTable in
// internal/experiments puts the two side by side.
func RecoverCompiled(top network.Topology, msgs []sim.Message, plan []Event, opt Options) (*Recovery, error) {
	pattern := patternOf(msgs)
	sched, err := opt.scheduler().Schedule(top, pattern)
	if err != nil {
		return nil, fmt.Errorf("fault: healthy compile: %w", err)
	}
	cs := sim.NewCompiledSim()
	healthy, err := cs.Run(sched, msgs, sim.TDM)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{
		HealthyTime:    healthy.Time,
		HealthyDegree:  sched.Degree(),
		DegradedDegree: sched.Degree(),
		Finish:         make([]int, len(msgs)),
	}

	// Work in (message, original index) pairs so finishes land in the
	// caller's index space however many times the pending set shrinks.
	cur := append([]sim.Message(nil), msgs...)
	idx := make([]int, len(msgs))
	for i := range idx {
		idx[i] = i
	}
	curSched := sched
	clock := 0
	faults := NewSet()

	for _, burst := range burstsOf(plan) {
		if len(cur) == 0 {
			break
		}
		local := burst.slot - clock
		if local < 0 {
			local = 0 // a fault landed inside the previous stall; it applies at resume
		}
		var out sim.CompiledResult
		rem, err := cs.RunUntil(curSched, cur, sim.TDM, local, &out)
		if err != nil {
			return nil, err
		}
		if rem == nil {
			// Everything pending was delivered before the burst fired.
			for i := range cur {
				rec.Finish[idx[i]] = clock + out.Finish[i]
			}
			cur, idx = nil, nil
			break
		}
		for _, e := range burst.events {
			faults.Apply(e)
		}
		// The Set keeps accumulating across bursts; the masked view must be
		// immutable once routed (the route cache keys on topology identity),
		// so each burst masks its own snapshot.
		masked := NewMasked(top, faults.Clone())

		b := Burst{Slot: clock + local, Faults: masked.Faults.String()}
		var pend []sim.Message
		var pendIdx []int
		for i := range cur {
			if rem[i] == 0 {
				rec.Finish[idx[i]] = clock + out.Finish[i]
				continue
			}
			m := cur[i]
			m.Flits = rem[i]
			m.Start = m.Start - local
			if m.Start < 0 {
				m.Start = 0
			}
			if _, rerr := network.CachedRoute(masked, nodeID(m.Src), nodeID(m.Dst)); rerr != nil {
				if errors.Is(rerr, network.ErrNoRoute) {
					b.Lost++
					rec.Lost++
					continue
				}
				return nil, rerr
			}
			pend = append(pend, m)
			pendIdx = append(pendIdx, idx[i])
		}
		clock += local
		if len(pend) == 0 {
			cur, idx = nil, nil
			rec.Bursts = append(rec.Bursts, b)
			break
		}

		newSched, _, err := Recompile(masked, patternOf(pend), opt.Scheduler)
		if err != nil {
			return nil, fmt.Errorf("fault: burst at slot %d: %w", b.Slot, err)
		}
		b.Degree = newSched.Degree()
		b.Stall = opt.DetectSlots + opt.CompileSlots + opt.reconfig().Cost(newSched.Degree())

		if opt.Fallback && b.Stall > 0 {
			pend, pendIdx, err = rec.serveFallback(&b, top, faults, pend, pendIdx, clock)
			if err != nil {
				return nil, err
			}
		}
		b.Verified = newSched.NumRequests()
		clock += b.Stall
		rec.StallSlots += b.Stall
		rec.FallbackFlits += b.FallbackFlits
		rec.DegradedDegree = newSched.Degree()
		rec.Bursts = append(rec.Bursts, b)
		cur, idx, curSched = pend, pendIdx, newSched
	}

	if len(cur) > 0 {
		var out sim.CompiledResult
		if err := cs.RunInto(curSched, cur, sim.TDM, &out); err != nil {
			return nil, err
		}
		for i := range cur {
			rec.Finish[idx[i]] = clock + out.Finish[i]
		}
	}
	for _, f := range rec.Finish {
		if f > 0 {
			rec.Delivered++
			if f > rec.TotalTime {
				rec.TotalTime = f
			}
		}
	}
	return rec, nil
}

// serveFallback models the SWOT overlap: during the stall the predetermined
// all-to-all fallback of the healthy topology carries one flit per frame
// for every pending message whose healthy route survives the failure set.
// Messages fully drained by the fallback are delivered at the end of the
// stall. Returns the still-pending messages.
func (rec *Recovery) serveFallback(b *Burst, top network.Topology, faults *Set, pend []sim.Message, pendIdx []int, clock int) ([]sim.Message, []int, error) {
	dec, err := schedule.DecompositionFor(top)
	if err != nil {
		// No predetermined fallback exists for this topology; the stall is
		// simply dead time.
		return pend, pendIdx, nil
	}
	quota := b.Stall / dec.NumPhases()
	if quota == 0 {
		return pend, pendIdx, nil
	}
	outMsgs := pend[:0]
	outIdx := pendIdx[:0]
	for i, m := range pend {
		p, rerr := network.CachedRoute(top, nodeID(m.Src), nodeID(m.Dst))
		if rerr == nil && !faults.BlocksPath(top, p) && m.Start == 0 {
			moved := quota
			if moved > m.Flits {
				moved = m.Flits
			}
			m.Flits -= moved
			b.FallbackFlits += moved
			if m.Flits == 0 {
				rec.Finish[pendIdx[i]] = clock + b.Stall
				continue
			}
		}
		outMsgs = append(outMsgs, m)
		outIdx = append(outIdx, pendIdx[i])
	}
	return outMsgs, outIdx, nil
}

// patternOf extracts the deduplicated request set of a message list.
func patternOf(msgs []sim.Message) request.Set {
	var set request.Set
	for _, m := range msgs {
		set = append(set, request.Request{Src: nodeID(m.Src), Dst: nodeID(m.Dst)})
	}
	return set.Dedup()
}

// burst groups the plan events that fire at one slot.
type burstGroup struct {
	slot   int
	events []Event
}

// burstsOf splits a plan into per-slot bursts, in slot order (stable for
// equal slots, so plans replay deterministically whatever their order).
func burstsOf(plan []Event) []burstGroup {
	if len(plan) == 0 {
		return nil
	}
	sorted := append([]Event(nil), plan...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Slot < sorted[j].Slot })
	var out []burstGroup
	for _, e := range sorted {
		if n := len(out); n > 0 && out[n-1].slot == e.Slot {
			out[n-1].events = append(out[n-1].events, e)
		} else {
			out = append(out, burstGroup{slot: e.Slot, events: []Event{e}})
		}
	}
	return out
}

// SimPlan expands an injection plan into the dynamic simulator's
// link-centric fault events: node faults become whole-link faults over
// every link touching the dead switch, channel faults carry their mask.
func SimPlan(t network.Topology, plan []Event) []sim.FaultEvent {
	var out []sim.FaultEvent
	for _, e := range plan {
		switch e.Kind {
		case LinkFault:
			out = append(out, sim.FaultEvent{Slot: e.Slot, Link: e.Link})
		case ChannelFault:
			out = append(out, sim.FaultEvent{Slot: e.Slot, Link: e.Link, Mask: e.Channels})
		case NodeFault:
			for id := 0; id < t.NumLinks(); id++ {
				li := t.Link(network.LinkID(id))
				if li.From == e.Node || li.To == e.Node {
					out = append(out, sim.FaultEvent{Slot: e.Slot, Link: li.ID})
				}
			}
		}
	}
	return out
}

func nodeID(i int) network.NodeID { return network.NodeID(i) }

package fault

import (
	"errors"
	"testing"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestMaskedRouteHealthyPassthrough(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	m := NewMasked(torus, NewSet())
	for _, pair := range [][2]int{{0, 1}, {0, 63}, {17, 42}} {
		want, err := torus.Route(network.NodeID(pair[0]), network.NodeID(pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Route(network.NodeID(pair[0]), network.NodeID(pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Links) != len(want.Links) {
			t.Fatalf("%v: masked route differs from base on a healthy network", pair)
		}
		for i := range want.Links {
			if got.Links[i] != want.Links[i] {
				t.Fatalf("%v: masked route differs at hop %d", pair, i)
			}
		}
	}
	if m.Name() != torus.Name() {
		t.Fatalf("healthy mask renames topology: %q", m.Name())
	}
	if m.NumNodes() != torus.NumNodes() || m.NumLinks() != torus.NumLinks() {
		t.Fatal("masked dimensions differ")
	}
}

func TestMaskedRouteDetours(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	direct, err := torus.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet()
	s.FailLink(direct.Links[0])
	m := NewMasked(torus, s)
	p, err := m.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Validate(torus, p); err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Links {
		if s.LinkFailed(l) {
			t.Fatalf("masked route uses failed link %d", l)
		}
	}
}

func TestMaskedRouteFailedEndpoints(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	s := NewSet()
	s.FailNode(9)
	m := NewMasked(torus, s)
	if _, err := m.Route(9, 0); !errors.Is(err, network.ErrNoRoute) {
		t.Fatalf("route from failed node: %v", err)
	}
	if _, err := m.Route(0, 9); !errors.Is(err, network.ErrNoRoute) {
		t.Fatalf("route to failed node: %v", err)
	}
	// Transit through the failed node must detour.
	p, err := m.Route(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Links {
		li := torus.Link(l)
		if li.From == 9 || li.To == 9 {
			t.Fatalf("masked route transits failed node 9 via link %d", l)
		}
	}
	// Structural errors keep their identity.
	if _, err := m.Route(3, 3); !errors.Is(err, network.ErrSelfLoop) {
		t.Fatalf("self loop: %v", err)
	}
	if _, err := m.Route(0, 999); !errors.Is(err, network.ErrBadNode) {
		t.Fatalf("bad node: %v", err)
	}
}

// TestMaskedSchedulable proves the scheduling stack runs unchanged on a
// masked topology: a pattern scheduled on a degraded 8x8 torus validates
// (conflict-freedom uses the masked routes) for every algorithm.
func TestMaskedSchedulable(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	events := RandomLinkPlan(torus, 7, 5, 0)
	m := NewMasked(torus, SetOf(events))
	var reqs request.Set
	for i := 0; i < 64; i++ {
		reqs = append(reqs, request.Request{Src: network.NodeID(i), Dst: network.NodeID((i + 9) % 64)})
	}
	for _, sched := range []schedule.Scheduler{schedule.Greedy{}, schedule.Coloring{}, schedule.OrderedAAPC{}, schedule.Combined{}} {
		res, err := sched.Schedule(m, reqs)
		if err != nil {
			t.Fatalf("%s on masked topology: %v", sched.Name(), err)
		}
		if err := res.Validate(reqs); err != nil {
			t.Fatalf("%s schedule invalid on masked topology: %v", sched.Name(), err)
		}
		for _, cfg := range res.Configs {
			for _, q := range cfg {
				p, err := network.CachedRoute(m, q.Src, q.Dst)
				if err != nil {
					t.Fatal(err)
				}
				if m.Faults.BlocksPath(torus, p) {
					t.Fatalf("%s scheduled %v over a failed resource", sched.Name(), q)
				}
			}
		}
	}
}

package fault

import (
	"fmt"

	"repro/internal/network"
)

// Masked presents a degraded network as an ordinary network.Topology, so
// every consumer of the healthy topology — the schedulers, the switch
// compiler, the optics tracer, the conflict machinery — recompiles against
// the failed network unchanged. The link-id space is preserved (failed
// links keep their ids and Link() descriptions; they simply never appear in
// a route), which keeps occupancy tracking, conflict graphs and switch
// lowering oblivious to the masking.
//
// Routing semantics: if the base topology's deterministic compile-time
// route survives the failure set, Masked returns it verbatim — degraded
// compilation then differs from healthy compilation only where it must.
// Otherwise Masked falls back to a deterministic shortest path over the
// surviving links (network.BFSRoute), and only when no such path exists —
// the failures disconnect the pair — does Route fail, with
// network.ErrNoRoute in its chain.
//
// A Masked value must be built after its failure Set is final: routes are
// memoized per topology value by network.CachedRoute, so mutating the Set
// of an already-routed Masked requires network.InvalidateRoutes(m).
type Masked struct {
	// Base is the healthy topology being masked.
	Base network.Topology
	// Faults is the failure state hidden from consumers.
	Faults *Set
}

// NewMasked wraps a topology with a failure set.
func NewMasked(base network.Topology, faults *Set) *Masked {
	if faults == nil {
		faults = NewSet()
	}
	return &Masked{Base: base, Faults: faults}
}

// Name implements network.Topology.
func (m *Masked) Name() string {
	if m.Faults.Empty() {
		return m.Base.Name()
	}
	return fmt.Sprintf("%s[faults %s]", m.Base.Name(), m.Faults)
}

// NumNodes implements network.Topology.
func (m *Masked) NumNodes() int { return m.Base.NumNodes() }

// NumLinks implements network.Topology. Failed links keep their ids.
func (m *Masked) NumLinks() int { return m.Base.NumLinks() }

// Link implements network.Topology.
func (m *Masked) Link(id network.LinkID) network.LinkInfo { return m.Base.Link(id) }

// NumTerminals reports the PE-bearing node count of the base topology, so
// multistage bases keep their terminal structure under masking.
func (m *Masked) NumTerminals() int { return network.TerminalCount(m.Base) }

// Route implements network.Topology over the surviving network.
func (m *Masked) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) >= 0 && int(src) < m.NumNodes() && m.Faults.NodeFailed(src) {
		return network.Path{}, fmt.Errorf("%w: source switch %d failed", network.ErrNoRoute, src)
	}
	if int(dst) >= 0 && int(dst) < m.NumNodes() && m.Faults.NodeFailed(dst) {
		return network.Path{}, fmt.Errorf("%w: destination switch %d failed", network.ErrNoRoute, dst)
	}
	// The base topology is long-lived (many masked views of one network),
	// so its routes come from the shared route cache; only the detours
	// around failed resources are computed per mask.
	p, err := network.CachedRoute(m.Base, src, dst)
	if err == nil && !m.Faults.BlocksPath(m.Base, p) {
		return p, nil
	}
	if err != nil {
		// Structural errors (self-loop, bad node) are not maskable.
		return network.Path{}, err
	}
	return network.BFSRoute(m.Base, src, dst, m.Faults.Blocks)
}

var (
	_ network.Topology  = (*Masked)(nil)
	_ network.Terminals = (*Masked)(nil)
)

// Package perf is the repository's standalone micro-benchmark harness: it
// measures ns/op and allocation rates of closures and serializes the numbers
// as JSON, so cmd/ccbench can pin a benchmark set into BENCH_sim.json from a
// plain binary (no `go test` run required, which keeps the CI smoke job and
// local regeneration one command). It deliberately mirrors the shape of
// testing.B output — ns/op, B/op, allocs/op — so the numbers line up with
// `go test -bench -benchmem` runs of the same workloads.
package perf

import (
	"fmt"
	"runtime"
	"time"
)

// targetDuration is how long the measured loop of one benchmark aims to run
// in full mode; long enough to flatten scheduler and timer noise without
// making a ~10-entry suite slow.
const targetDuration = 200 * time.Millisecond

// maxIterations caps calibration so a pathologically fast closure cannot
// spin the loop counter into the billions.
const maxIterations = 1_000_000

// Result is the measurement of one benchmark, in testing.B units.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// SweepResult is the wall-clock measurement of one parallel-sweep run; the
// Workers axis is what shows the worker pool's scaling.
type SweepResult struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	Trials  int     `json:"trials"`
	WallMs  float64 `json:"wall_ms"`
}

// Value is one named scalar locked into the report — not a timing but a
// model-level number (iteration slot counts, decision tallies) that the
// benchmark binary computes, asserts, and records so reviewers can diff it
// across commits like any other row.
type Value struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// Report is the BENCH_*.json document.
type Report struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Benchmarks []Result      `json:"benchmarks"`
	Sweeps     []SweepResult `json:"sweeps,omitempty"`
	Values     []Value       `json:"values,omitempty"`
}

// AddValue appends a named scalar to the report.
func (r *Report) AddValue(name string, v float64, unit string) {
	r.Values = append(r.Values, Value{Name: name, Value: v, Unit: unit})
}

// LastResult returns the most recently appended benchmark row with the
// given name, for binaries that assert relations between their own rows.
func (r *Report) LastResult(name string) (Result, bool) {
	for i := len(r.Benchmarks) - 1; i >= 0; i-- {
		if r.Benchmarks[i].Name == name {
			return r.Benchmarks[i], true
		}
	}
	return Result{}, false
}

// NewReport stamps the environment of this process.
func NewReport(quick bool) *Report {
	return &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
}

// Run measures f and appends the result to the report. The closure is run
// once untimed as a warm-up (letting lazily-built caches populate, exactly
// like the warm-up iteration of the sim benchmarks), then a calibrated loop
// is timed with the allocation counters read before and after. In quick mode
// the loop is a single iteration — the CI smoke setting, where the point is
// that the harness runs, not that the numbers are stable.
func (r *Report) Run(name string, f func() error) error {
	if err := f(); err != nil {
		return fmt.Errorf("perf: %s: warm-up: %w", name, err)
	}
	iters := 1
	if !r.Quick {
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("perf: %s: calibration: %w", name, err)
		}
		per := time.Since(start)
		if per <= 0 {
			per = time.Nanosecond
		}
		iters = int(targetDuration / per)
		if iters < 1 {
			iters = 1
		}
		if iters > maxIterations {
			iters = maxIterations
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return fmt.Errorf("perf: %s: iteration %d: %w", name, i, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	r.Benchmarks = append(r.Benchmarks, Result{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	})
	return nil
}

// RunSweep times one wall-clock run of a sweep configuration and appends it.
func (r *Report) RunSweep(name string, workers, trials int, f func() error) error {
	start := time.Now()
	if err := f(); err != nil {
		return fmt.Errorf("perf: sweep %s workers=%d: %w", name, workers, err)
	}
	r.Sweeps = append(r.Sweeps, SweepResult{
		Name:    name,
		Workers: workers,
		Trials:  trials,
		WallMs:  float64(time.Since(start).Microseconds()) / 1000,
	})
	return nil
}

package perf

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestRunMeasuresAllocations(t *testing.T) {
	r := NewReport(false)
	sink := make([][]byte, 0, 8)
	if err := r.Run("allocating", func() error {
		sink = sink[:0]
		for i := 0; i < 4; i++ {
			sink = append(sink, make([]byte, 1024))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	res := r.Benchmarks[0]
	if res.Name != "allocating" || res.Iterations < 1 {
		t.Fatalf("bad result %+v", res)
	}
	// 4 slices of 1 KiB per op: the counters must see roughly that. The
	// bounds are loose because the runtime batches allocations.
	if res.AllocsPerOp < 3 || res.AllocsPerOp > 16 {
		t.Errorf("allocs/op = %.1f, want ~4", res.AllocsPerOp)
	}
	if res.BytesPerOp < 4*1024 || res.BytesPerOp > 4*4096 {
		t.Errorf("B/op = %.0f, want ~4096", res.BytesPerOp)
	}
	if res.NsPerOp <= 0 {
		t.Errorf("ns/op = %.1f, want > 0", res.NsPerOp)
	}
}

func TestQuickModeRunsOnce(t *testing.T) {
	r := NewReport(true)
	calls := 0
	if err := r.Run("counted", func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	// Warm-up plus one measured iteration.
	if calls != 2 {
		t.Errorf("quick mode called the closure %d times, want 2", calls)
	}
	if r.Benchmarks[0].Iterations != 1 {
		t.Errorf("quick mode recorded %d iterations, want 1", r.Benchmarks[0].Iterations)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	r := NewReport(true)
	boom := errors.New("boom")
	err := r.Run("failing", func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the closure's", err)
	}
	if len(r.Benchmarks) != 0 {
		t.Error("failed benchmark recorded a result")
	}
}

func TestReportJSONShape(t *testing.T) {
	r := NewReport(true)
	if err := r.Run("noop", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.RunSweep("sweep", 4, 16, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"go_version"`, `"gomaxprocs"`, `"ns_per_op"`, `"allocs_per_op"`, `"wall_ms"`, `"workers"`} {
		if !strings.Contains(string(out), key) {
			t.Errorf("JSON missing %s: %s", key, out)
		}
	}
}

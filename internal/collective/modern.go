package collective

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/request"
)

// This file adds the collective shapes that dominate modern large-model
// training — tree allreduce, MoE-style sparse all-to-all, and
// pipeline-parallel point-to-point — alongside the classic generators.
// They are the workloads the crossover atlas (internal/experiments) sweeps
// over the dragonfly and fat-tree fabrics: the MoE fan-out parameter is a
// direct sparsity dial, and the pipeline's repeated identical rounds are
// the keep-vs-reconfigure best case.

// TreeAllReduce is the latency-optimal binomial-tree allreduce: partial
// results flow down the tree to rank 0 (a Reduce), then the combined result
// flows back up (a Broadcast) — 2*ceil(log2 n) rounds total, versus the
// ring's 2(n-1) bandwidth-optimal rounds. Small n or small vectors favor
// the tree; the crossover between the two is itself topology-dependent.
func TreeAllReduce(n, elements int) (Collective, error) {
	red, err := Reduce(0, n, elements)
	if err != nil {
		return Collective{}, fmt.Errorf("collective: tree-all-reduce: %w", err)
	}
	bc, err := Broadcast(0, n, elements)
	if err != nil {
		return Collective{}, fmt.Errorf("collective: tree-all-reduce: %w", err)
	}
	c := Collective{Name: "tree-all-reduce", Nodes: n}
	for _, part := range []Collective{red, bc} {
		for r := range part.Rounds {
			c.Rounds = append(c.Rounds, part.Rounds[r].Clone())
			vol := make(map[request.Request]int, len(part.Rounds[r]))
			for req, v := range part.Volumes[r] {
				vol[req] = v
			}
			c.Volumes = append(c.Volumes, vol)
		}
	}
	return c, nil
}

// MoEAllToAll is the sparse expert-parallel exchange of Mixture-of-Experts
// layers: every rank hosts one expert, and every rank's token batch is
// routed to the topk experts its gate selected. The result is two rounds —
// a dispatch (rank -> its topk experts) and the mirrored combine (experts
// -> rank) — whose density is topk/(n-1): topk is the sparsity dial the
// crossover atlas sweeps.
//
// Expert choices are drawn per source rank from a SplitMix64 stream seeded
// with (seed, rank), so the pattern is a pure function of (n, topk, seed):
// byte-identical across processes and worker counts, yet irregular like a
// real learned gate (a rank never selects itself). `elements` is the token
// payload sent to each selected expert.
func MoEAllToAll(n, topk, elements int, seed uint64) (Collective, error) {
	if err := checkArgs(0, n, elements); err != nil {
		return Collective{}, err
	}
	if topk < 1 || topk > n-1 {
		return Collective{}, fmt.Errorf("collective: moe top-k %d outside [1, %d]", topk, n-1)
	}
	dispatch := make(request.Set, 0, n*topk)
	for i := 0; i < n; i++ {
		rng := moeRNG{state: seed ^ (0x9e3779b97f4a7c15 * (uint64(i) + 1))}
		chosen := make(map[int]bool, topk)
		for len(chosen) < topk {
			e := int(rng.next() % uint64(n))
			if e == i || chosen[e] {
				continue
			}
			chosen[e] = true
		}
		experts := make([]int, 0, topk)
		for e := range chosen {
			experts = append(experts, e)
		}
		sort.Ints(experts)
		for _, e := range experts {
			dispatch = append(dispatch, request.Request{Src: network.NodeID(i), Dst: network.NodeID(e)})
		}
	}
	combine := make(request.Set, len(dispatch))
	for i, req := range dispatch {
		combine[i] = request.Request{Src: req.Dst, Dst: req.Src}
	}
	combine = combine.Sorted()

	c := Collective{Name: fmt.Sprintf("moe-alltoall-k%d", topk), Nodes: n}
	for _, set := range []request.Set{dispatch, combine} {
		vol := make(map[request.Request]int, len(set))
		for _, req := range set {
			vol[req] = elements
		}
		c.Rounds = append(c.Rounds, set)
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

// PipelineP2P is the steady-state traffic of pipeline parallelism: stages
// 0..stages-1 in a chain, `microbatches` forward rounds each sending
// activations from stage i to stage i+1, then `microbatches` backward
// rounds sending gradients from stage i to stage i-1. Every forward round
// shares one circuit set and every backward round another, so — like the
// ring — a keep-aware scheduler pays reconfiguration only twice however
// many microbatches flow.
func PipelineP2P(stages, microbatches, elements int) (Collective, error) {
	if err := checkArgs(0, stages, elements); err != nil {
		return Collective{}, err
	}
	if microbatches < 1 {
		return Collective{}, fmt.Errorf("collective: pipeline needs >= 1 microbatches, got %d", microbatches)
	}
	fwd := make(request.Set, 0, stages-1)
	bwd := make(request.Set, 0, stages-1)
	for i := 0; i < stages-1; i++ {
		fwd = append(fwd, request.Request{Src: network.NodeID(i), Dst: network.NodeID(i + 1)})
		bwd = append(bwd, request.Request{Src: network.NodeID(i + 1), Dst: network.NodeID(i)})
	}
	c := Collective{Name: "pipeline-p2p", Nodes: stages}
	addRounds := func(set request.Set) {
		for m := 0; m < microbatches; m++ {
			vol := make(map[request.Request]int, len(set))
			for _, req := range set {
				vol[req] = elements
			}
			c.Rounds = append(c.Rounds, set.Clone())
			c.Volumes = append(c.Volumes, vol)
		}
	}
	addRounds(fwd)
	addRounds(bwd)
	return c, nil
}

// moeRNG is a SplitMix64 stream — the same generator the scheduler's
// differential tests and the fault planner use for deterministic
// irregularity.
type moeRNG struct{ state uint64 }

func (r *moeRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package collective_test

import (
	"encoding/json"
	"testing"

	"repro/internal/collective"
	"repro/internal/request"
	"repro/internal/trace"
)

func TestTreeAllReduceStructure(t *testing.T) {
	for _, n := range []int{2, 5, 8, 64} {
		c, err := collective.TreeAllReduce(n, 16)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		depth := 0
		for 1<<depth < n {
			depth++
		}
		if c.NumRounds() != 2*depth {
			t.Fatalf("n=%d: %d rounds, want %d", n, c.NumRounds(), 2*depth)
		}
		// The reduce half must gather everything at rank 0 by its midpoint
		// and the broadcast half must then reach every rank.
		red := collective.Collective{Rounds: c.Rounds[:depth]}
		all := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			all[i] = true
		}
		if has := propagate(red, all); !has[0] {
			t.Fatalf("n=%d: reduce half never reaches rank 0", n)
		}
		bc := collective.Collective{Rounds: c.Rounds[depth:]}
		if has := propagate(bc, map[int]bool{0: true}); len(has) != n {
			t.Fatalf("n=%d: broadcast half reached only %d ranks", n, len(has))
		}
	}
	if _, err := collective.TreeAllReduce(1, 16); err == nil {
		t.Error("TreeAllReduce(1) accepted")
	}
}

func TestMoEAllToAllShape(t *testing.T) {
	const n, topk = 64, 4
	c, err := collective.MoEAllToAll(n, topk, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRounds() != 2 {
		t.Fatalf("%d rounds, want 2 (dispatch + combine)", c.NumRounds())
	}
	if len(c.Rounds[0]) != n*topk || len(c.Rounds[1]) != n*topk {
		t.Fatalf("round sizes %d/%d, want %d each", len(c.Rounds[0]), len(c.Rounds[1]), n*topk)
	}
	// Dispatch: every source fans out to exactly topk distinct experts,
	// never itself; combine is the exact mirror.
	fanout := make(map[request.Request]bool)
	perSrc := make(map[int]map[int]bool)
	for _, req := range c.Rounds[0] {
		if req.Src == req.Dst {
			t.Fatalf("self-send %v", req)
		}
		if fanout[req] {
			t.Fatalf("duplicate dispatch %v", req)
		}
		fanout[req] = true
		s := int(req.Src)
		if perSrc[s] == nil {
			perSrc[s] = make(map[int]bool)
		}
		perSrc[s][int(req.Dst)] = true
	}
	for s, experts := range perSrc {
		if len(experts) != topk {
			t.Fatalf("rank %d selected %d experts, want %d", s, len(experts), topk)
		}
	}
	for _, req := range c.Rounds[1] {
		if !fanout[request.Request{Src: req.Dst, Dst: req.Src}] {
			t.Fatalf("combine %v has no matching dispatch", req)
		}
	}
	// Different seeds should give different gates (overwhelmingly likely).
	c2, err := collective.MoEAllToAll(n, topk, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, req := range c.Rounds[0] {
		if c2.Rounds[0][i] != req {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical gates")
	}

	if _, err := collective.MoEAllToAll(4, 0, 8, 1); err == nil {
		t.Error("topk=0 accepted")
	}
	if _, err := collective.MoEAllToAll(4, 4, 8, 1); err == nil {
		t.Error("topk=n accepted")
	}
}

func TestPipelineP2PStructure(t *testing.T) {
	const stages, micro = 8, 4
	c, err := collective.PipelineP2P(stages, micro, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRounds() != 2*micro {
		t.Fatalf("%d rounds, want %d", c.NumRounds(), 2*micro)
	}
	for r := 0; r < micro; r++ {
		for i, req := range c.Rounds[r] {
			if int(req.Src) != i || int(req.Dst) != i+1 {
				t.Fatalf("forward round %d request %d is %v", r, i, req)
			}
		}
	}
	for r := micro; r < 2*micro; r++ {
		for i, req := range c.Rounds[r] {
			if int(req.Src) != i+1 || int(req.Dst) != i {
				t.Fatalf("backward round %d request %d is %v", r, i, req)
			}
		}
	}
	// All forward rounds share one circuit set: the keep-friendly property.
	for r := 1; r < micro; r++ {
		for i := range c.Rounds[0] {
			if c.Rounds[r][i] != c.Rounds[0][i] {
				t.Fatalf("forward rounds 0 and %d differ", r)
			}
		}
	}
	if _, err := collective.PipelineP2P(4, 0, 32); err == nil {
		t.Error("microbatches=0 accepted")
	}
}

// TestModernTracesDeterministic asserts the generators are pure functions
// of their arguments: the serialized trace documents (the bytes /session
// replays and PatternKey hashes) are identical across repeated generation.
func TestModernTracesDeterministic(t *testing.T) {
	gen := func() [][]byte {
		var out [][]byte
		moe, err := collective.MoEAllToAll(128, 4, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := collective.TreeAllReduce(32, 64)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := collective.PipelineP2P(16, 4, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []collective.Collective{moe, tree, pipe} {
			doc := trace.FromProgram(c.Program(1), c.Nodes)
			b, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("trace %d not byte-identical across generations", i)
		}
	}
}

package collective_test

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/topology"
)

// propagate simulates who holds the broadcast datum after each round.
func propagate(c collective.Collective, seed map[int]bool) map[int]bool {
	has := make(map[int]bool, len(seed))
	for k, v := range seed {
		has[k] = v
	}
	for _, round := range c.Rounds {
		next := make(map[int]bool, len(has))
		for k := range has {
			next[k] = true
		}
		for _, r := range round {
			if has[int(r.Src)] {
				next[int(r.Dst)] = true
			}
		}
		has = next
	}
	return has
}

func TestBroadcastCoversAllRanks(t *testing.T) {
	for _, n := range []int{2, 5, 8, 64, 100} {
		for _, root := range []int{0, 1, n - 1} {
			c, err := collective.Broadcast(root, n, 16)
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			has := propagate(c, map[int]bool{root: true})
			if len(has) != n {
				t.Fatalf("n=%d root=%d: broadcast reached %d ranks", n, root, len(has))
			}
			// log-depth rounds.
			maxRounds := 0
			for 1<<maxRounds < n {
				maxRounds++
			}
			if c.NumRounds() != maxRounds {
				t.Fatalf("n=%d: %d rounds, want %d", n, c.NumRounds(), maxRounds)
			}
		}
	}
}

func TestBroadcastSendersAlreadyHold(t *testing.T) {
	// In every round, a sender must already hold the datum when the round
	// starts — otherwise the tree is pipelined wrong.
	c, err := collective.Broadcast(3, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{3: true}
	for r, round := range c.Rounds {
		for _, req := range round {
			if !has[int(req.Src)] {
				t.Fatalf("round %d: sender %d does not hold the datum yet", r, req.Src)
			}
		}
		for _, req := range round {
			has[int(req.Dst)] = true
		}
	}
}

func TestReduceMirrorsBroadcast(t *testing.T) {
	c, err := collective.Reduce(0, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate contribution flow: every rank starts with its own
	// contribution; after all rounds the root must hold all 16.
	contrib := make(map[int]map[int]bool)
	for i := 0; i < 16; i++ {
		contrib[i] = map[int]bool{i: true}
	}
	for _, round := range c.Rounds {
		for _, req := range round {
			for k := range contrib[int(req.Src)] {
				contrib[int(req.Dst)][k] = true
			}
		}
	}
	if len(contrib[0]) != 16 {
		t.Fatalf("root gathered %d contributions, want 16", len(contrib[0]))
	}
}

func TestScatterDeliversDistinctChunks(t *testing.T) {
	const n, elements = 16, 4
	c, err := collective.Scatter(2, n, elements)
	if err != nil {
		t.Fatal(err)
	}
	// Track how many elements each rank ends up holding for itself: the
	// root starts with n chunks; every round it (and other holders) pass
	// the far half of what they hold. At the end every rank must retain
	// exactly one chunk's worth.
	hold := map[int]int{2: n * elements}
	for r, round := range c.Rounds {
		for _, req := range round {
			v := c.Volumes[r][req]
			if hold[int(req.Src)] < v {
				t.Fatalf("round %d: %v sends %d elements but holds %d", r, req, v, hold[int(req.Src)])
			}
			hold[int(req.Src)] -= v
			hold[int(req.Dst)] += v
		}
	}
	for i := 0; i < n; i++ {
		if hold[i] != elements {
			t.Fatalf("rank %d ends with %d elements, want %d", i, hold[i], elements)
		}
	}
	if _, err := collective.Scatter(0, 12, 4); err == nil {
		t.Error("non-power-of-two scatter accepted")
	}
}

func TestGatherCollectsEverything(t *testing.T) {
	const n = 8
	c, err := collective.Gather(1, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	hold := map[int]int{}
	for i := 0; i < n; i++ {
		hold[i] = 4
	}
	for r, round := range c.Rounds {
		for _, req := range round {
			v := c.Volumes[r][req]
			if hold[int(req.Src)] != v {
				t.Fatalf("round %d: %v sends %d, holds %d", r, req, v, hold[int(req.Src)])
			}
			hold[int(req.Dst)] += v
			hold[int(req.Src)] = 0
		}
	}
	if hold[1] != n*4 {
		t.Fatalf("root holds %d elements, want %d", hold[1], n*4)
	}
}

func TestAllGatherEveryoneGetsEverything(t *testing.T) {
	const n = 32
	c, err := collective.AllGather(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([]map[int]bool, n)
	for i := range chunks {
		chunks[i] = map[int]bool{i: true}
	}
	for _, round := range c.Rounds {
		// Exchanges are simultaneous: compute sends from the pre-round
		// state.
		snapshot := make([]map[int]bool, n)
		for i := range chunks {
			snapshot[i] = make(map[int]bool, len(chunks[i]))
			for k := range chunks[i] {
				snapshot[i][k] = true
			}
		}
		for _, req := range round {
			for k := range snapshot[int(req.Src)] {
				chunks[int(req.Dst)][k] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if len(chunks[i]) != n {
			t.Fatalf("rank %d holds %d chunks, want %d", i, len(chunks[i]), n)
		}
	}
}

func TestAllReduceCombinesAllContributions(t *testing.T) {
	const n = 16
	c, err := collective.AllReduce(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	contrib := make([]map[int]bool, n)
	for i := range contrib {
		contrib[i] = map[int]bool{i: true}
	}
	for _, round := range c.Rounds {
		snapshot := make([]map[int]bool, n)
		for i := range contrib {
			snapshot[i] = make(map[int]bool, len(contrib[i]))
			for k := range contrib[i] {
				snapshot[i][k] = true
			}
		}
		for _, req := range round {
			for k := range snapshot[int(req.Src)] {
				contrib[int(req.Dst)][k] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if len(contrib[i]) != n {
			t.Fatalf("rank %d combined %d contributions, want %d", i, len(contrib[i]), n)
		}
	}
	// Every round carries the full vector.
	for r := range c.Rounds {
		for _, v := range c.Volumes[r] {
			if v != 64 {
				t.Fatalf("round %d carries %d elements, want 64", r, v)
			}
		}
	}
}

func TestCollectiveProgramCompiles(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	for _, build := range []func() (collective.Collective, error){
		func() (collective.Collective, error) { return collective.Broadcast(0, 64, 16) },
		func() (collective.Collective, error) { return collective.AllGather(64, 4) },
		func() (collective.Collective, error) { return collective.AllReduce(64, 16) },
		func() (collective.Collective, error) { return collective.Gather(5, 64, 4) },
	} {
		c, err := build()
		if err != nil {
			t.Fatal(err)
		}
		prog := c.Program(4)
		cp, err := core.Compiler{Topology: torus}.Compile(prog)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if cp.Reconfigurations() != c.NumRounds() {
			t.Fatalf("%s: %d phases for %d rounds", c.Name, cp.Reconfigurations(), c.NumRounds())
		}
		// Tree/exchange rounds are low-conflict: each rank sends at most
		// once per round, so the degree stays small.
		for i := range cp.Phases {
			if d := cp.Phases[i].Degree(); d > 8 {
				t.Errorf("%s round %d: degree %d unexpectedly high", c.Name, i, d)
			}
		}
	}
}

func TestCollectiveErrors(t *testing.T) {
	if _, err := collective.Broadcast(0, 1, 4); err == nil {
		t.Error("single rank accepted")
	}
	if _, err := collective.Broadcast(9, 8, 4); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := collective.Broadcast(0, 8, 0); err == nil {
		t.Error("zero elements accepted")
	}
	if _, err := collective.AllGather(12, 4); err == nil {
		t.Error("non-power-of-two all-gather accepted")
	}
	if _, err := collective.AllReduce(12, 4); err == nil {
		t.Error("non-power-of-two all-reduce accepted")
	}
}

// Package collective builds classic collective operations — broadcast,
// reduce, scatter, gather, all-gather, all-reduce — as sequences of
// compiled communication rounds. The paper's introduction motivates
// compiled communication with exactly this class of operations (its
// citations include Chen & Li's collective-communication compilation); this
// package shows how they map onto the system: each round is a static
// pattern the compiler schedules at minimal multiplexing degree, and the
// rounds execute as the phases of one core.Program.
//
// Trees and exchanges are expressed on logical ranks 0..n-1, relative to a
// root where applicable; embedding onto the physical topology is the
// scheduler's job.
package collective

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/sim"
)

// Collective is a multi-round communication structure: Rounds[r] holds the
// connections of round r; Volumes[r] the per-connection element counts.
type Collective struct {
	Name    string
	Nodes   int
	Rounds  []request.Set
	Volumes []map[request.Request]int
}

// NumRounds returns the number of communication rounds.
func (c Collective) NumRounds() int { return len(c.Rounds) }

// Program converts the collective into a compilable program, one phase per
// round; flitElements is the flit granularity (elements per flit).
func (c Collective) Program(flitElements int) core.Program {
	if flitElements < 1 {
		flitElements = 1
	}
	prog := core.Program{Name: c.Name}
	for r, set := range c.Rounds {
		phase := core.Phase{Name: fmt.Sprintf("%s round %d", c.Name, r)}
		for _, req := range set {
			elems := c.Volumes[r][req]
			flits := (elems + flitElements - 1) / flitElements
			if flits < 1 {
				flits = 1
			}
			phase.Messages = append(phase.Messages, sim.Message{
				Src: int(req.Src), Dst: int(req.Dst), Flits: flits,
			})
		}
		prog.Phases = append(prog.Phases, phase)
	}
	return prog
}

// unrel maps a root-relative index back to an absolute rank.
func unrel(j, root, n int) int { return (j + root) % n }

// Broadcast returns the binomial-tree broadcast of `elements` elements from
// root to all n ranks: ceil(log2 n) rounds; in round r every rank that
// already holds the datum forwards it to its partner 2^r away.
func Broadcast(root, n, elements int) (Collective, error) {
	if err := checkArgs(root, n, elements); err != nil {
		return Collective{}, err
	}
	c := Collective{Name: "broadcast", Nodes: n}
	for span := 1; span < n; span *= 2 {
		var set request.Set
		vol := make(map[request.Request]int)
		for j := 0; j < span && j+span < n; j++ {
			req := request.Request{
				Src: network.NodeID(unrel(j, root, n)),
				Dst: network.NodeID(unrel(j+span, root, n)),
			}
			set = append(set, req)
			vol[req] = elements
		}
		c.Rounds = append(c.Rounds, set)
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

// Reduce is the mirror of Broadcast: partial results flow down the binomial
// tree to the root, largest spans first.
func Reduce(root, n, elements int) (Collective, error) {
	b, err := Broadcast(root, n, elements)
	if err != nil {
		return Collective{}, err
	}
	c := Collective{Name: "reduce", Nodes: n}
	for r := b.NumRounds() - 1; r >= 0; r-- {
		set := make(request.Set, len(b.Rounds[r]))
		vol := make(map[request.Request]int, len(b.Rounds[r]))
		for i, req := range b.Rounds[r] {
			rev := request.Request{Src: req.Dst, Dst: req.Src}
			set[i] = rev
			vol[rev] = elements
		}
		c.Rounds = append(c.Rounds, set)
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

// Scatter distributes n distinct chunks of `elements` elements from the
// root, one per rank, down the binomial tree: in the first round the root
// sends the half of the data destined for the far subtree, and so on, so
// round volumes halve.
func Scatter(root, n, elements int) (Collective, error) {
	if err := checkArgs(root, n, elements); err != nil {
		return Collective{}, err
	}
	if n&(n-1) != 0 {
		return Collective{}, fmt.Errorf("collective: scatter needs a power-of-two rank count, got %d", n)
	}
	c := Collective{Name: "scatter", Nodes: n}
	for span := n / 2; span >= 1; span /= 2 {
		var set request.Set
		vol := make(map[request.Request]int)
		for j := 0; j < n; j += 2 * span {
			req := request.Request{
				Src: network.NodeID(unrel(j, root, n)),
				Dst: network.NodeID(unrel(j+span, root, n)),
			}
			set = append(set, req)
			vol[req] = elements * span // the whole far-subtree payload
		}
		c.Rounds = append(c.Rounds, set)
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

// Gather is the mirror of Scatter: chunks flow up the binomial tree to the
// root, volumes doubling as subtrees merge.
func Gather(root, n, elements int) (Collective, error) {
	s, err := Scatter(root, n, elements)
	if err != nil {
		return Collective{}, err
	}
	c := Collective{Name: "gather", Nodes: n}
	for r := s.NumRounds() - 1; r >= 0; r-- {
		set := make(request.Set, len(s.Rounds[r]))
		vol := make(map[request.Request]int, len(s.Rounds[r]))
		for i, req := range s.Rounds[r] {
			rev := request.Request{Src: req.Dst, Dst: req.Src}
			set[i] = rev
			vol[rev] = s.Volumes[r][req]
		}
		c.Rounds = append(c.Rounds, set)
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

// AllGather uses recursive doubling: in round r every rank exchanges its
// accumulated 2^r chunks with the partner rank 2^r away, so after log2(n)
// rounds every rank holds all n chunks of `elements` elements.
func AllGather(n, elements int) (Collective, error) {
	if err := checkArgs(0, n, elements); err != nil {
		return Collective{}, err
	}
	if n&(n-1) != 0 {
		return Collective{}, fmt.Errorf("collective: all-gather needs a power-of-two rank count, got %d", n)
	}
	c := Collective{Name: "all-gather", Nodes: n}
	for span := 1; span < n; span *= 2 {
		var set request.Set
		vol := make(map[request.Request]int)
		for i := 0; i < n; i++ {
			req := request.Request{Src: network.NodeID(i), Dst: network.NodeID(i ^ span)}
			set = append(set, req)
			vol[req] = elements * span // everything accumulated so far
		}
		c.Rounds = append(c.Rounds, set)
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

// AllReduce uses recursive doubling with full-vector exchanges: in every
// round each rank swaps its current partial result (all `elements`
// elements) with the partner 2^r away and combines.
func AllReduce(n, elements int) (Collective, error) {
	ag, err := AllGather(n, elements)
	if err != nil {
		return Collective{}, fmt.Errorf("collective: all-reduce: %w", err)
	}
	c := Collective{Name: "all-reduce", Nodes: n}
	for _, set := range ag.Rounds {
		vol := make(map[request.Request]int, len(set))
		for _, req := range set {
			vol[req] = elements // full partial vector every round
		}
		c.Rounds = append(c.Rounds, set.Clone())
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

// RingAllReduce is the bandwidth-optimal ring algorithm: a reduce-scatter
// of n-1 rounds followed by an all-gather of n-1 rounds, every round the
// same pattern — rank i sends one 1/n chunk to rank i+1 mod n. All 2(n-1)
// phases share the identical circuit set, which makes the ring the
// canonical workload for keep-vs-reconfigure decisions: after the first
// round the compiled circuits never change, only the chunk indices do.
func RingAllReduce(n, elements int) (Collective, error) {
	if err := checkArgs(0, n, elements); err != nil {
		return Collective{}, err
	}
	chunk := (elements + n - 1) / n
	if chunk < 1 {
		chunk = 1
	}
	var ring request.Set
	for i := 0; i < n; i++ {
		ring = append(ring, request.Request{Src: network.NodeID(i), Dst: network.NodeID((i + 1) % n)})
	}
	c := Collective{Name: "ring-all-reduce", Nodes: n}
	for r := 0; r < 2*(n-1); r++ {
		vol := make(map[request.Request]int, n)
		for _, req := range ring {
			vol[req] = chunk
		}
		c.Rounds = append(c.Rounds, ring.Clone())
		c.Volumes = append(c.Volumes, vol)
	}
	return c, nil
}

func checkArgs(root, n, elements int) error {
	if n < 2 {
		return fmt.Errorf("collective: need >= 2 ranks, got %d", n)
	}
	if root < 0 || root >= n {
		return fmt.Errorf("collective: root %d outside [0, %d)", root, n)
	}
	if elements < 1 {
		return fmt.Errorf("collective: %d elements per chunk", elements)
	}
	return nil
}

package embed_test

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/patterns"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestIdentityAndValidate(t *testing.T) {
	m := embed.Identity(16)
	if err := m.Validate(16); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(8); err == nil {
		t.Error("wrong size accepted")
	}
	bad := embed.Identity(16)
	bad[0] = bad[1]
	if err := bad.Validate(16); err == nil {
		t.Error("duplicate node accepted")
	}
	bad[0] = 99
	if err := bad.Validate(16); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestGrayTorusIsBijection(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	m, err := embed.GrayTorus(torus)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(64); err != nil {
		t.Fatal(err)
	}
	if _, err := embed.GrayTorus(topology.NewTorus(6, 8)); err == nil {
		t.Error("non-power-of-two torus accepted")
	}
}

// TestGrayTorusNeighborProperty: averaged over all single-bit rank
// neighbors, the Gray embedding places them strictly closer on the torus
// than the identity embedding does. (No embedding can make *every* bit
// neighbor adjacent: a ring of 8 has only 4 nodes within 2 hops but each
// address half has 3 bit neighbors.)
func TestGrayTorusNeighborProperty(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	gray, err := embed.GrayTorus(torus)
	if err != nil {
		t.Fatal(err)
	}
	total := func(m embed.Mapping) int {
		sum := 0
		for rank := 0; rank < 64; rank++ {
			for b := 0; b < 6; b++ {
				dx, dy := torus.Offsets(m[rank], m[rank^(1<<b)])
				sum += abs(dx) + abs(dy)
			}
		}
		return sum
	}
	id := total(embed.Identity(64))
	gr := total(gray)
	t.Logf("total bit-neighbor distance: identity %d, gray %d", id, gr)
	if gr >= id {
		t.Errorf("gray embedding (%d) not closer than identity (%d)", gr, id)
	}
}

// TestGrayEmbeddingReducesHypercubeCost: the headline result — embedding
// the hypercube pattern with Gray codes shortens paths (and often the
// degree) versus the identity embedding.
func TestGrayEmbeddingReducesHypercubeCost(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	sched := schedule.Combined{}
	idDeg, idLen, err := embed.Cost(torus, sched, set, embed.Identity(64))
	if err != nil {
		t.Fatal(err)
	}
	gray, err := embed.GrayTorus(torus)
	if err != nil {
		t.Fatal(err)
	}
	gDeg, gLen, err := embed.Cost(torus, sched, set, gray)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hypercube on 8x8 torus: identity degree=%d pathlen=%d; gray degree=%d pathlen=%d",
		idDeg, idLen, gDeg, gLen)
	if gLen >= idLen {
		t.Errorf("gray embedding did not shorten paths: %d vs %d", gLen, idLen)
	}
	if gDeg > idDeg {
		t.Errorf("gray embedding raised the degree: %d vs %d", gDeg, idDeg)
	}
}

func TestSearchImprovesOrKeeps(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	sched := schedule.Coloring{}
	start := embed.Identity(64)
	d0, l0, err := embed.Cost(torus, sched, set, start)
	if err != nil {
		t.Fatal(err)
	}
	m, err := embed.Search(torus, sched, set, start, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(64); err != nil {
		t.Fatal(err)
	}
	d1, l1, err := embed.Cost(torus, sched, set, m)
	if err != nil {
		t.Fatal(err)
	}
	if d1 > d0 || (d1 == d0 && l1 > l0) {
		t.Errorf("search worsened the embedding: (%d,%d) -> (%d,%d)", d0, l0, d1, l1)
	}
	t.Logf("search: degree %d->%d, pathlen %d->%d", d0, d1, l0, l1)
}

func TestSearchRejectsBadStart(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	if _, err := embed.Search(torus, schedule.Greedy{}, patterns.Ring(16), embed.Identity(8), 4, 1); err == nil {
		t.Error("short mapping accepted")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

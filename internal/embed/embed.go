// Package embed optimizes the mapping from logical PE ranks to physical
// network nodes. The paper schedules patterns as given — logical rank i
// lives on physical node i — but a compiler that controls the whole
// machine can also choose the embedding, and the choice changes both path
// lengths and conflicts, hence the multiplexing degree. The classic
// example is the hypercube pattern on a torus: a Gray-code embedding makes
// every hypercube neighbor a torus neighbor or near-neighbor, where the
// row-major identity embedding spreads them across the machine.
package embed

import (
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// Mapping assigns each logical rank a physical node. It must be a
// bijection on [0, n).
type Mapping []network.NodeID

// Validate checks the mapping is a permutation of the nodes.
func (m Mapping) Validate(nodes int) error {
	if len(m) != nodes {
		return fmt.Errorf("embed: mapping covers %d ranks, want %d", len(m), nodes)
	}
	seen := make([]bool, nodes)
	for r, n := range m {
		if int(n) < 0 || int(n) >= nodes {
			return fmt.Errorf("embed: rank %d mapped to invalid node %d", r, n)
		}
		if seen[n] {
			return fmt.Errorf("embed: node %d used twice", n)
		}
		seen[n] = true
	}
	return nil
}

// Apply rewrites a logical request set into physical node terms.
func (m Mapping) Apply(reqs request.Set) request.Set {
	out := make(request.Set, len(reqs))
	for i, r := range reqs {
		out[i] = request.Request{Src: m[r.Src], Dst: m[r.Dst]}
	}
	return out
}

// Identity maps rank i to node i.
func Identity(nodes int) Mapping {
	m := make(Mapping, nodes)
	for i := range m {
		m[i] = network.NodeID(i)
	}
	return m
}

// GrayTorus embeds hypercube-addressed ranks into a 2^a x 2^b torus using
// a per-dimension binary-reflected Gray code: rank bits split into row and
// column halves, each half Gray-decoded into a coordinate. Ranks differing
// in one bit land on torus nodes differing by one grid step, so
// hypercube-style patterns become near-neighbor traffic.
func GrayTorus(t *topology.Torus) (Mapping, error) {
	a, b := logDim(t.H), logDim(t.W)
	if a < 0 || b < 0 {
		return nil, fmt.Errorf("embed: torus %dx%d dimensions not powers of two", t.W, t.H)
	}
	m := make(Mapping, t.NumNodes())
	for rank := 0; rank < t.NumNodes(); rank++ {
		rowBits := rank >> b
		colBits := rank & (1<<b - 1)
		m[rank] = t.Node(grayToInt(rowBits), grayToInt(colBits))
	}
	return m, nil
}

// grayToInt interprets g as a binary-reflected Gray code and returns the
// corresponding position: consecutive positions differ in one bit of g, so
// placing rank-with-gray-bits g at position gray^-1(g)... inverted: we want
// consecutive RANKS (binary) to map to positions such that single-bit rank
// changes move one step. Encoding rank bits r to position gray(r) does
// exactly that for the lowest bit; the standard trick is to use the Gray
// code of the coordinate: position p carries rank gray(p). Inverting:
// rank r sits at position grayInverse(r).
func grayToInt(g int) int {
	p := 0
	for g != 0 {
		p ^= g
		g >>= 1
	}
	return p
}

// logDim returns log2(n) or -1 when n is not a power of two.
func logDim(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	if 1<<k != n {
		return -1
	}
	return k
}

// Cost evaluates a mapping for a pattern on a topology: the multiplexing
// degree of the embedded pattern under the given scheduler, with total path
// length as the tie-breaker. Lower is better.
func Cost(t network.Topology, s schedule.Scheduler, reqs request.Set, m Mapping) (degree, pathLen int, err error) {
	embedded := m.Apply(reqs)
	res, err := s.Schedule(t, embedded)
	if err != nil {
		return 0, 0, err
	}
	paths, err := embedded.Routes(t)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range paths {
		pathLen += p.Len()
	}
	return res.Degree(), pathLen, nil
}

// Search improves an initial mapping by random pairwise swaps: a swap is
// kept when it reduces (degree, pathLen) lexicographically. Deterministic
// for a fixed seed; `swaps` bounds the work.
func Search(t network.Topology, s schedule.Scheduler, reqs request.Set, start Mapping, swaps int, seed int64) (Mapping, error) {
	nodes := t.NumNodes()
	if err := start.Validate(nodes); err != nil {
		return nil, err
	}
	cur := append(Mapping(nil), start...)
	bestDeg, bestLen, err := Cost(t, s, reqs, cur)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < swaps; i++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		cur[a], cur[b] = cur[b], cur[a]
		deg, plen, err := Cost(t, s, reqs, cur)
		if err != nil {
			return nil, err
		}
		if deg < bestDeg || (deg == bestDeg && plen < bestLen) {
			bestDeg, bestLen = deg, plen
		} else {
			cur[a], cur[b] = cur[b], cur[a] // revert
		}
	}
	return cur, nil
}

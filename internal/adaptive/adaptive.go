// Package adaptive explores a compiler freedom the fixed-routing schedulers
// leave on the table: route choice. The paper's network model routes every
// connection dimension-order X-then-Y; but the compiler writes the switch
// registers, so nothing stops it from routing one circuit X-then-Y and
// another Y-then-X when that avoids a conflict. This package schedules with
// both orientations available per connection, and — because route choice
// is exactly what fault avoidance needs — also supports compiling around
// failed links.
//
// The plan type is self-contained (it carries the chosen path per
// connection) because the rest of the system assumes one deterministic
// route per (src, dst).
package adaptive

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/topology"
)

// Assignment is one scheduled circuit: the request plus the concrete path
// chosen for it.
type Assignment struct {
	Req  request.Request
	Path network.Path
}

// Plan is a schedule with per-connection route choices.
type Plan struct {
	Topology *topology.Torus
	Configs  [][]Assignment
}

// Degree returns the plan's multiplexing degree.
func (p *Plan) Degree() int { return len(p.Configs) }

// Validate re-checks every configuration for conflicts and every path for
// structural soundness and fault avoidance.
func (p *Plan) Validate(reqs request.Set, failed map[network.LinkID]bool) error {
	want := make(map[request.Request]int, len(reqs))
	for _, r := range reqs {
		want[r]++
	}
	got := make(map[request.Request]int)
	for k, cfg := range p.Configs {
		occ := network.NewOccupancy()
		for _, a := range cfg {
			if err := network.Validate(p.Topology, a.Path); err != nil {
				return fmt.Errorf("adaptive: config %d: %w", k, err)
			}
			if a.Path.Src != a.Req.Src || a.Path.Dst != a.Req.Dst {
				return fmt.Errorf("adaptive: config %d: path endpoints do not match %v", k, a.Req)
			}
			for _, l := range a.Path.Links {
				if failed[l] {
					return fmt.Errorf("adaptive: config %d: %v routed over failed link %d", k, a.Req, l)
				}
			}
			if !occ.CanAdd(a.Path) {
				return fmt.Errorf("adaptive: config %d: conflict at %v", k, a.Req)
			}
			occ.Add(a.Path)
			got[a.Req]++
		}
	}
	for r, n := range want {
		if got[r] != n {
			return fmt.Errorf("adaptive: request %v scheduled %d times, want %d", r, got[r], n)
		}
	}
	for r, n := range got {
		if want[r] != n {
			return fmt.Errorf("adaptive: extraneous request %v (%d times)", r, n)
		}
	}
	return nil
}

// routeYX mirrors the torus's X-then-Y route with the opposite dimension
// order.
func routeYX(t *topology.Torus, src, dst network.NodeID) (network.Path, error) {
	dx, dy := t.Offsets(src, dst)
	links := make([]network.LinkID, 0, absi(dx)+absi(dy))
	row, col := t.Coord(src)
	for step := 0; step < absi(dy); step++ {
		n := t.Node(row, col)
		if dy > 0 {
			links = append(links, linkID(n, topology.PortYPlus))
			row++
		} else {
			links = append(links, linkID(n, topology.PortYMinus))
			row--
		}
	}
	for step := 0; step < absi(dx); step++ {
		n := t.Node(row, col)
		if dx > 0 {
			links = append(links, linkID(n, topology.PortXPlus))
			col++
		} else {
			links = append(links, linkID(n, topology.PortXMinus))
			col--
		}
	}
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

// linkID mirrors the torus's outgoing-link numbering (node*4 + port - 1).
func linkID(n network.NodeID, port int) network.LinkID {
	return network.LinkID(int(n)*4 + port - 1)
}

// candidates returns the usable routes for a request: XY and YX, minus any
// that crosses a failed link. Pure-row or pure-column routes have a single
// candidate.
func candidates(t *topology.Torus, r request.Request, failed map[network.LinkID]bool) ([]network.Path, error) {
	xy, err := t.Route(r.Src, r.Dst)
	if err != nil {
		return nil, err
	}
	paths := []network.Path{xy}
	yx, err := routeYX(t, r.Src, r.Dst)
	if err != nil {
		return nil, err
	}
	if !samePath(xy, yx) {
		paths = append(paths, yx)
	}
	var ok []network.Path
	for _, p := range paths {
		usable := true
		for _, l := range p.Links {
			if failed[l] {
				usable = false
				break
			}
		}
		if usable {
			ok = append(ok, p)
		}
	}
	if len(ok) == 0 {
		return nil, fmt.Errorf("adaptive: request %v unroutable around failed links", r)
	}
	return ok, nil
}

func samePath(a, b network.Path) bool {
	if len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}

// Schedule first-fit packs the requests, trying each candidate route in
// each existing configuration before opening a new one. failed may be nil.
func Schedule(t *topology.Torus, reqs request.Set, failed map[network.LinkID]bool) (*Plan, error) {
	if err := reqs.Validate(t); err != nil {
		return nil, err
	}
	plan := &Plan{Topology: t}
	var occs []*network.Occupancy
	for _, r := range reqs {
		cands, err := candidates(t, r, failed)
		if err != nil {
			return nil, err
		}
		placed := false
	search:
		for k := range plan.Configs {
			for _, p := range cands {
				if occs[k].CanAdd(p) {
					occs[k].Add(p)
					plan.Configs[k] = append(plan.Configs[k], Assignment{Req: r, Path: p})
					placed = true
					break search
				}
			}
		}
		if !placed {
			occ := network.NewOccupancy()
			occ.Add(cands[0])
			occs = append(occs, occ)
			plan.Configs = append(plan.Configs, []Assignment{{Req: r, Path: cands[0]}})
		}
	}
	return plan, nil
}

func absi(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

package adaptive_test

import (
	"math/rand"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestScheduleValidOnPatterns(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	sets := []request.Set{
		patterns.Ring(64),
		patterns.NearestNeighbor2D(8, 8),
		hyper,
		patterns.Transpose(8),
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3; i++ {
		set, err := patterns.Random(rng, 64, 300+400*i)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	for si, set := range sets {
		plan, err := adaptive.Schedule(torus, set, nil)
		if err != nil {
			t.Fatalf("set %d: %v", si, err)
		}
		if err := plan.Validate(set, nil); err != nil {
			t.Fatalf("set %d: %v", si, err)
		}
	}
}

// TestAdaptiveRoutingNeverWorseOnAverage: with both orientations available,
// first-fit should beat fixed-XY first-fit on average over random patterns.
func TestAdaptiveRoutingBeatsFixedGreedy(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(77))
	sumFixed, sumAdaptive := 0, 0
	for trial := 0; trial < 10; trial++ {
		set, err := patterns.Random(rng, 64, 1000)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := schedule.Greedy{}.Schedule(torus, set)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := adaptive.Schedule(torus, set, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(set, nil); err != nil {
			t.Fatal(err)
		}
		sumFixed += fixed.Degree()
		sumAdaptive += plan.Degree()
	}
	t.Logf("avg degree over 10 random 1000-connection patterns: fixed-XY greedy %.1f, adaptive greedy %.1f",
		float64(sumFixed)/10, float64(sumAdaptive)/10)
	if sumAdaptive >= sumFixed {
		t.Errorf("adaptive routing (%d) did not beat fixed routing (%d)", sumAdaptive, sumFixed)
	}
}

func TestTransposeBenefitsFromOrientation(t *testing.T) {
	// The transpose pattern is the classic case: all XY routes of (r,c) ->
	// (c,r) turn at the same corner switches; mixing YX halves the
	// pressure.
	torus := topology.NewTorus(8, 8)
	set := patterns.Transpose(8)
	fixed, err := schedule.Greedy{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adaptive.Schedule(torus, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("transpose: fixed-XY %d slots, adaptive %d slots", fixed.Degree(), plan.Degree())
	if plan.Degree() > fixed.Degree() {
		t.Errorf("adaptive (%d) worse than fixed (%d)", plan.Degree(), fixed.Degree())
	}
}

func TestFaultAvoidance(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.Ring(64)
	// Fail a link on a multi-hop XY route (the row-boundary ring connection
	// 7 -> 8 crosses two links) and verify the plan takes the YX
	// alternative around it.
	p, err := torus.Route(7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() < 2 {
		t.Fatal("test premise broken: 7->8 should be multi-hop")
	}
	failed := map[network.LinkID]bool{p.Links[0]: true}
	plan, err := adaptive.Schedule(torus, set, failed)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(set, failed); err != nil {
		t.Fatal(err)
	}
}

func TestUnroutableFaultReported(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// (0,0) -> (0,1): both orientations use the single +X link 0->1 (a
	// one-hop route has no alternative), so failing it must error.
	p, err := torus.Route(torus.Node(0, 0), torus.Node(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	failed := map[network.LinkID]bool{p.Links[0]: true}
	set := request.Set{{Src: torus.Node(0, 0), Dst: torus.Node(0, 1)}}
	if _, err := adaptive.Schedule(torus, set, failed); err == nil {
		t.Error("unroutable request accepted")
	}
}

func TestRandomFaultsSurvivable(t *testing.T) {
	// With a handful of random failed links, multi-hop traffic still
	// schedules (single-hop neighbor traffic over a failed link is the
	// only hard loss).
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(5))
	set, err := patterns.Random(rng, 64, 400)
	if err != nil {
		t.Fatal(err)
	}
	failed := map[network.LinkID]bool{}
	for len(failed) < 4 {
		failed[network.LinkID(rng.Intn(torus.NumLinks()))] = true
	}
	plan, err := adaptive.Schedule(torus, set, failed)
	if err != nil {
		t.Skipf("this fault set cut off a single-candidate route: %v", err)
	}
	if err := plan.Validate(set, failed); err != nil {
		t.Fatal(err)
	}
	t.Logf("scheduled 400 random connections around 4 failed links in %d slots", plan.Degree())
}

func TestValidateDetectsCorruption(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := request.Set{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	plan, err := adaptive.Schedule(torus, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drop a request.
	corrupt := &adaptive.Plan{Topology: torus, Configs: [][]adaptive.Assignment{plan.Configs[0][:1]}}
	if err := corrupt.Validate(set, nil); err == nil {
		t.Error("missing request accepted")
	}
	// Report a path over a failed link.
	failed := map[network.LinkID]bool{plan.Configs[0][0].Path.Links[0]: true}
	if err := plan.Validate(set, failed); err == nil {
		t.Error("failed-link path accepted")
	}
}

package ccomm

import (
	"math/rand"

	"repro/internal/patterns"
	"repro/internal/redist"
)

// Pattern constructors re-exported for the public API. See
// internal/patterns and internal/redist for details.

// RingPattern connects each of n logical PEs to both ring neighbors.
func RingPattern(n int) RequestSet { return patterns.Ring(n) }

// NearestNeighborPattern connects each PE of a logical w x h wraparound
// grid to its four neighbors.
func NearestNeighborPattern(w, h int) RequestSet { return patterns.NearestNeighbor2D(w, h) }

// HypercubePattern connects each of n PEs (n a power of two) to its
// log2(n) hypercube neighbors.
func HypercubePattern(n int) (RequestSet, error) { return patterns.Hypercube(n) }

// ShuffleExchangePattern connects each PE to its shuffle and exchange
// partners.
func ShuffleExchangePattern(n int) (RequestSet, error) { return patterns.ShuffleExchange(n) }

// AllToAllPattern connects every PE to every other PE.
func AllToAllPattern(n int) RequestSet { return patterns.AllToAll(n) }

// RandomPattern draws n distinct uniformly random requests over the PEs.
func RandomPattern(rng *rand.Rand, pes, n int) (RequestSet, error) {
	return patterns.Random(rng, pes, n)
}

// Redistribution computes the communication pattern (and element volumes)
// of moving a 3-D array between two block-cyclic distributions.
type Redistribution = redist.Pattern

// BlockCyclic builds a distribution of a 3-D array: per dimension, p PEs
// with block size b (p = 1 leaves the dimension undistributed).
func BlockCyclic(p0, b0, p1, b1, p2, b2 int) (redist.Dist, error) {
	return redist.NewDist([3]redist.DimDist{{P: p0, B: b0}, {P: p1, B: b1}, {P: p2, B: b2}})
}

// Redistribute computes the redistribution pattern of an array with the
// given shape between two distributions.
func Redistribute(shape [3]int, from, to redist.Dist) (Redistribution, error) {
	return redist.Redistribute(shape, from, to)
}

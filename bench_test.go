package ccomm_test

// The benchmark harness regenerates every quantitative table of the paper
// and the ablations called out in DESIGN.md. Each benchmark reports the
// paper's metric (multiplexing degree or communication time in slots) via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the tables'
// numbers alongside the usual ns/op:
//
//	BenchmarkTable1…   degree of greedy/coloring/aapc/combined on random patterns
//	BenchmarkTable2…   degree on random block-cyclic redistributions
//	BenchmarkTable3…   degree on ring / nearest-neighbor / hypercube /
//	                   shuffle-exchange / all-to-all
//	BenchmarkTable5…   compiled vs dynamic communication time on GS/TSCF/P3M
//	BenchmarkFigure3…  the greedy-vs-optimal example instance
//	BenchmarkAblation… design-choice ablations (coloring priority, AAPC
//	                   ranking, tie policy)
//
// cmd/cctables and cmd/ccsim print the same data in the paper's row format.

import (
	"fmt"
	"math/rand"
	"testing"

	ccomm "repro"
	"repro/internal/adaptive"
	"repro/internal/apps"
	"repro/internal/benes"
	"repro/internal/embed"
	"repro/internal/multihop"
	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/redist"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

var benchTorus = topology.NewTorus(8, 8)

// benchSchedulers are the four algorithms of Tables 1-3, in column order.
func benchSchedulers() []schedule.Scheduler {
	return []schedule.Scheduler{
		schedule.Greedy{},
		schedule.Coloring{},
		schedule.OrderedAAPC{},
		schedule.Combined{},
	}
}

// reportDegree runs the scheduler over pre-generated request sets, cycling
// through them across iterations, and reports the mean multiplexing degree.
func reportDegree(b *testing.B, s schedule.Scheduler, sets []request.Set) {
	b.Helper()
	sum, count := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := sets[i%len(sets)]
		res, err := s.Schedule(benchTorus, set)
		if err != nil {
			b.Fatal(err)
		}
		sum += res.Degree()
		count++
	}
	b.StopTimer()
	b.ReportMetric(float64(sum)/float64(count), "degree")
}

// --- Table 1: random patterns ---------------------------------------------

func randomSets(b *testing.B, n, count int) []request.Set {
	b.Helper()
	rng := rand.New(rand.NewSource(1996))
	sets := make([]request.Set, count)
	for i := range sets {
		set, err := patterns.Random(rng, 64, n)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

func BenchmarkTable1(b *testing.B) {
	for _, n := range []int{100, 400, 800, 1200, 1600, 2000, 2400, 2800, 3200, 3600, 4000} {
		sets := randomSets(b, n, 20)
		for _, s := range benchSchedulers() {
			b.Run(fmt.Sprintf("conns=%d/%s", n, s.Name()), func(b *testing.B) {
				reportDegree(b, s, sets)
			})
		}
	}
}

// --- Table 2: random data redistribution patterns --------------------------

func BenchmarkTable2(b *testing.B) {
	rng := rand.New(rand.NewSource(1996))
	sets := make([]request.Set, 30)
	for i := range sets {
		pat, _, _, err := redist.RandomRedistribution(rng, [3]int{64, 64, 64}, 64)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = pat.Reqs
	}
	for _, s := range benchSchedulers() {
		b.Run(s.Name(), func(b *testing.B) {
			reportDegree(b, s, sets)
		})
	}
}

// --- Table 3: frequently used patterns -------------------------------------

func table3Patterns(b *testing.B) map[string]request.Set {
	b.Helper()
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		b.Fatal(err)
	}
	shuffle, err := patterns.ShuffleExchange(64)
	if err != nil {
		b.Fatal(err)
	}
	return map[string]request.Set{
		"ring":             patterns.Ring(64),
		"nearest-neighbor": patterns.NearestNeighbor2D(8, 8),
		"hypercube":        hyper,
		"shuffle-exchange": shuffle,
		"all-to-all":       patterns.AllToAll(64),
	}
}

func BenchmarkTable3(b *testing.B) {
	for name, set := range table3Patterns(b) {
		for _, s := range benchSchedulers() {
			b.Run(name+"/"+s.Name(), func(b *testing.B) {
				reportDegree(b, s, []request.Set{set})
			})
		}
	}
}

// --- Table 5: compiled vs dynamic communication time ------------------------

// table5Workloads returns the application phases of Table 5 keyed by row
// label.
func table5Workloads(b *testing.B) []struct {
	name string
	msgs []sim.Message
} {
	b.Helper()
	var rows []struct {
		name string
		msgs []sim.Message
	}
	add := func(name string, msgs []sim.Message) {
		rows = append(rows, struct {
			name string
			msgs []sim.Message
		}{name, msgs})
	}
	for _, n := range []int{64, 128, 256} {
		ph, err := apps.GS(n, 64)
		if err != nil {
			b.Fatal(err)
		}
		add(fmt.Sprintf("GS-%d", n), ph.Messages)
	}
	tscf, err := apps.TSCF(64)
	if err != nil {
		b.Fatal(err)
	}
	add("TSCF", tscf.Messages)
	for _, n := range []int{32, 64} {
		phases, err := apps.P3M(n)
		if err != nil {
			b.Fatal(err)
		}
		for _, ph := range phases {
			add(fmt.Sprintf("%s-%d", ph.Name, n), ph.Messages)
		}
	}
	return rows
}

func BenchmarkTable5Compiled(b *testing.B) {
	for _, row := range table5Workloads(b) {
		b.Run(row.name, func(b *testing.B) {
			ph := apps.Phase{Messages: row.msgs}
			res, err := schedule.Combined{}.Schedule(benchTorus, ph.Pattern().Dedup())
			if err != nil {
				b.Fatal(err)
			}
			var last int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := sim.RunCompiled(res, row.msgs)
				if err != nil {
					b.Fatal(err)
				}
				last = out.Time
			}
			b.ReportMetric(float64(last), "slots")
			b.ReportMetric(float64(res.Degree()), "degree")
		})
	}
}

func BenchmarkTable5Dynamic(b *testing.B) {
	for _, row := range table5Workloads(b) {
		for _, k := range []int{1, 2, 5, 10} {
			b.Run(fmt.Sprintf("%s/K=%d", row.name, k), func(b *testing.B) {
				s, err := sim.NewSimulator(benchTorus, sim.DefaultParams(k))
				if err != nil {
					b.Fatal(err)
				}
				var out sim.DynamicResult
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.RunInto(row.msgs, &out); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(out.Time), "slots")
			})
		}
	}
}

// --- Figures ---------------------------------------------------------------

// BenchmarkFigure3 times the paper's 4-request example: greedy (3 slots)
// and exact (2 slots) on the 5-node linear array.
func BenchmarkFigure3(b *testing.B) {
	lin := topology.NewLinear(5)
	reqs := request.Set{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}, {Src: 2, Dst: 4}}
	b.Run("greedy", func(b *testing.B) {
		var deg int
		for i := 0; i < b.N; i++ {
			res, err := schedule.Greedy{}.Schedule(lin, reqs)
			if err != nil {
				b.Fatal(err)
			}
			deg = res.Degree()
		}
		b.ReportMetric(float64(deg), "degree")
	})
	b.Run("optimal", func(b *testing.B) {
		var deg int
		for i := 0; i < b.N; i++ {
			res, err := schedule.Exact{}.Schedule(lin, reqs)
			if err != nil {
				b.Fatal(err)
			}
			deg = res.Degree()
		}
		b.ReportMetric(float64(deg), "degree")
	})
}

// BenchmarkFigure1 validates and times the Fig. 1 configuration check on
// the 4x4 torus.
func BenchmarkFigure1(b *testing.B) {
	torus := topology.NewTorus(4, 4)
	reqs := request.Set{{Src: 4, Dst: 1}, {Src: 5, Dst: 3}, {Src: 6, Dst: 10}, {Src: 8, Dst: 9}, {Src: 11, Dst: 2}}
	var deg int
	for i := 0; i < b.N; i++ {
		res, err := schedule.Greedy{}.Schedule(torus, reqs)
		if err != nil {
			b.Fatal(err)
		}
		deg = res.Degree()
	}
	if deg != 1 {
		b.Fatalf("Fig. 1 configuration needs %d slots, want 1", deg)
	}
	b.ReportMetric(float64(deg), "degree")
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationColoringPriority compares the degree-based priority this
// implementation defaults to against the paper's literal links/degree
// ratio.
func BenchmarkAblationColoringPriority(b *testing.B) {
	sets := randomSets(b, 1200, 20)
	b.Run("degree-desc", func(b *testing.B) {
		reportDegree(b, schedule.Coloring{}, sets)
	})
	b.Run("paper-ratio", func(b *testing.B) {
		reportDegree(b, schedule.Coloring{Priority: schedule.PaperRatioPriority}, sets)
	})
}

// BenchmarkAblationAAPCRanking measures the effect of ranking AAPC phases
// by utilization (Fig. 5 line 6) versus keeping decomposition order.
func BenchmarkAblationAAPCRanking(b *testing.B) {
	sets := randomSets(b, 2000, 20)
	b.Run("ranked", func(b *testing.B) {
		reportDegree(b, schedule.OrderedAAPC{}, sets)
	})
	b.Run("unranked", func(b *testing.B) {
		reportDegree(b, schedule.OrderedAAPC{DisableRanking: true}, sets)
	})
}

// BenchmarkAblationTiePolicy shows why balanced tie-breaking matters: with
// all N/2-offset traffic forced one way, the all-to-all needs more slots.
func BenchmarkAblationTiePolicy(b *testing.B) {
	set := patterns.AllToAll(64)
	policies := map[string]topology.TiePolicy{
		"balanced": topology.TieBalanced,
		"positive": topology.TiePositive,
	}
	for name, tie := range policies {
		b.Run(name, func(b *testing.B) {
			torus := topology.NewTorus(8, 8)
			torus.Tie = tie
			var deg int
			for i := 0; i < b.N; i++ {
				res, err := schedule.Coloring{}.Schedule(torus, set)
				if err != nil {
					b.Fatal(err)
				}
				deg = res.Degree()
			}
			b.ReportMetric(float64(deg), "degree")
		})
	}
}

// BenchmarkAblationBackoff measures dynamic-control sensitivity to the
// retry backoff base on a contended dense pattern.
func BenchmarkAblationBackoff(b *testing.B) {
	phases, err := apps.P3M(32)
	if err != nil {
		b.Fatal(err)
	}
	msgs := phases[1].Messages // the dense P3M 2 redistribution
	for _, backoff := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("backoff=%d", backoff), func(b *testing.B) {
			var last int
			for i := 0; i < b.N; i++ {
				p := sim.DefaultParams(5)
				p.RetryBackoff = backoff
				out, err := sim.Dynamic{Topology: benchTorus, Params: p}.Run(msgs)
				if err != nil {
					b.Fatal(err)
				}
				last = out.Time
			}
			b.ReportMetric(float64(last), "slots")
		})
	}
}

// BenchmarkAblationShadowQueuing measures the cost of modeling contention
// on the electronic shadow network (single control queue per switch)
// versus the paper's light-traffic assumption.
func BenchmarkAblationShadowQueuing(b *testing.B) {
	tscf, err := apps.TSCF(64)
	if err != nil {
		b.Fatal(err)
	}
	for _, queued := range []bool{false, true} {
		name := "contention-free"
		if queued {
			name = "queued"
		}
		b.Run(name, func(b *testing.B) {
			var last int
			for i := 0; i < b.N; i++ {
				p := sim.DefaultParams(5)
				p.ShadowQueuing = queued
				out, err := sim.Dynamic{Topology: benchTorus, Params: p}.Run(tscf.Messages)
				if err != nil {
					b.Fatal(err)
				}
				last = out.Time
			}
			b.ReportMetric(float64(last), "slots")
		})
	}
}

// BenchmarkFigureLoadLatency sweeps offered load for an open-loop random
// workload and reports mean message latency under the compiled AAPC
// fallback (the section 3.3 strategy for dynamic patterns) and under
// runtime reservations — the latency-vs-load curve classic network papers
// plot.
func BenchmarkFigureLoadLatency(b *testing.B) {
	full, err := schedule.OrderedAAPC{}.Schedule(benchTorus, patterns.AllToAll(64))
	if err != nil {
		b.Fatal(err)
	}
	for _, gap := range []int{1600, 800, 400, 200} {
		rng := rand.New(rand.NewSource(2026))
		msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{
			Nodes: 64, MessagesPerNode: 20, Flits: 2, MeanGap: gap,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gap=%d/aapc-fallback", gap), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				out, err := sim.RunCompiled(full, msgs)
				if err != nil {
					b.Fatal(err)
				}
				lat, err = sim.MeanLatency(msgs, out.Finish)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat, "slots/msg")
		})
		b.Run(fmt.Sprintf("gap=%d/dynamic-K10", gap), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				out, err := sim.Dynamic{Topology: benchTorus, Params: sim.DefaultParams(10)}.Run(msgs)
				if err != nil {
					b.Fatal(err)
				}
				lat, err = sim.MeanLatency(msgs, out.Finish)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat, "slots/msg")
		})
	}
}

// BenchmarkAblationTDMvsWDM compares the two multiplexing technologies on
// the same compiled all-to-all schedule.
func BenchmarkAblationTDMvsWDM(b *testing.B) {
	set := patterns.AllToAll(64)
	res, err := schedule.OrderedAAPC{}.Schedule(benchTorus, set)
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([]sim.Message, len(set))
	for i, r := range set {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 8}
	}
	b.Run("tdm", func(b *testing.B) {
		var last int
		for i := 0; i < b.N; i++ {
			out, err := sim.RunCompiled(res, msgs)
			if err != nil {
				b.Fatal(err)
			}
			last = out.Time
		}
		b.ReportMetric(float64(last), "slots")
	})
	b.Run("wdm", func(b *testing.B) {
		var last int
		for i := 0; i < b.N; i++ {
			out, err := sim.RunCompiledWDM(res, msgs)
			if err != nil {
				b.Fatal(err)
			}
			last = out.Time
		}
		b.ReportMetric(float64(last), "slots")
	})
}

// BenchmarkExtensionTorus3D compares the P3M 26-neighbor exchange on the
// paper's 2-D torus against a physically 3-D 4x4x4 torus: the logical
// pattern embeds with shorter paths and fewer conflicts in 3-D.
func BenchmarkExtensionTorus3D(b *testing.B) {
	phases, err := apps.P3M(32)
	if err != nil {
		b.Fatal(err)
	}
	nn := phases[4] // P3M 5
	set := nn.Pattern().Dedup()
	topos := map[string]network.Topology{
		"torus-8x8":     topology.NewTorus(8, 8),
		"torus3d-4x4x4": topology.NewTorus3D(4, 4, 4),
	}
	for name, topo := range topos {
		b.Run(name, func(b *testing.B) {
			var deg int
			for i := 0; i < b.N; i++ {
				res, err := schedule.Coloring{}.Schedule(topo, set)
				if err != nil {
					b.Fatal(err)
				}
				deg = res.Degree()
			}
			b.ReportMetric(float64(deg), "degree")
		})
	}
}

// BenchmarkExtensionScaling measures how pattern degrees grow with torus
// size under the coloring scheduler.
func BenchmarkExtensionScaling(b *testing.B) {
	for _, side := range []int{4, 8, 16} {
		torus := topology.NewTorus(side, side)
		n := side * side
		sets := map[string]request.Set{
			"ring":      patterns.Ring(n),
			"nn2d":      patterns.NearestNeighbor2D(side, side),
			"transpose": patterns.Transpose(side),
		}
		for name, set := range sets {
			b.Run(fmt.Sprintf("%dx%d/%s", side, side, name), func(b *testing.B) {
				var deg int
				for i := 0; i < b.N; i++ {
					res, err := schedule.Coloring{}.Schedule(torus, set)
					if err != nil {
						b.Fatal(err)
					}
					deg = res.Degree()
				}
				b.ReportMetric(float64(deg), "degree")
			})
		}
	}
}

// BenchmarkExtensionOmegaMIN schedules the Table 3 patterns on a 64-PE
// Omega multistage network, the TDM substrate of the paper's predecessor
// work (Qiao & Melhem's TDM MINs), against the 8x8 torus.
func BenchmarkExtensionOmegaMIN(b *testing.B) {
	omega := topology.NewOmega(64)
	for name, set := range table3Patterns(b) {
		b.Run(name, func(b *testing.B) {
			var deg int
			for i := 0; i < b.N; i++ {
				res, err := schedule.Combined{}.Schedule(omega, set)
				if err != nil {
					b.Fatal(err)
				}
				deg = res.Degree()
			}
			b.ReportMetric(float64(deg), "degree")
		})
	}
}

// BenchmarkExtensionBenes schedules the Table 3 patterns on a 64-terminal
// Beneš rearrangeable network, where bipartite edge coloring plus the
// looping algorithm provably achieves the injection/ejection-port lower
// bound for every pattern. The degree column is the interesting output:
// compare it with the torus (Table 3) and Omega results.
func BenchmarkExtensionBenes(b *testing.B) {
	net, err := benes.New(64)
	if err != nil {
		b.Fatal(err)
	}
	for name, set := range table3Patterns(b) {
		b.Run(name, func(b *testing.B) {
			var deg int
			for i := 0; i < b.N; i++ {
				plan, err := net.Schedule(set)
				if err != nil {
					b.Fatal(err)
				}
				if err := plan.Verify(); err != nil {
					b.Fatal(err)
				}
				deg = plan.Degree()
			}
			b.ReportMetric(float64(deg), "degree")
		})
	}
}

// BenchmarkAblationReservationScheme compares the paper's forward-locking
// protocol against the observe-then-lock backward variant on a contended
// workload.
func BenchmarkAblationReservationScheme(b *testing.B) {
	tscf, err := apps.TSCF(64)
	if err != nil {
		b.Fatal(err)
	}
	for _, scheme := range []sim.ReservationScheme{sim.LockForward, sim.LockBackward} {
		b.Run(scheme.String(), func(b *testing.B) {
			var last int
			for i := 0; i < b.N; i++ {
				p := sim.DefaultParams(5)
				p.Reservation = scheme
				out, err := sim.Dynamic{Topology: benchTorus, Params: p}.Run(tscf.Messages)
				if err != nil {
					b.Fatal(err)
				}
				last = out.Time
			}
			b.ReportMetric(float64(last), "slots")
		})
	}
}

// BenchmarkExtensionIteratedGreedy measures the compile-time/quality trade
// of random-restart scheduling over the combined algorithm.
func BenchmarkExtensionIteratedGreedy(b *testing.B) {
	sets := randomSets(b, 1600, 8)
	b.Run("combined", func(b *testing.B) {
		reportDegree(b, schedule.Combined{}, sets)
	})
	b.Run("iterated-32", func(b *testing.B) {
		reportDegree(b, schedule.IteratedGreedy{Restarts: 32}, sets)
	})
}

// BenchmarkExtensionRegisterDepth sweeps the shift-register depth the
// hardware provides and reports the total time of the dense P3M 2 phase
// when its 64-configuration schedule must execute as sub-phases of at most
// that depth, paying a register rewrite between sub-phases. Shallow
// registers force frequent reconfiguration; the sweep exposes the knee.
func BenchmarkExtensionRegisterDepth(b *testing.B) {
	phases, err := apps.P3M(32)
	if err != nil {
		b.Fatal(err)
	}
	ph := phases[1] // P3M 2
	res, err := schedule.Combined{}.Schedule(benchTorus, apps.Phase{Messages: ph.Messages}.Pattern().Dedup())
	if err != nil {
		b.Fatal(err)
	}
	const reconfigPerSlot, barrier = 1, 16
	for _, depth := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				subs, err := schedule.SplitByDepth(res, depth)
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, sub := range subs {
					var msgs []sim.Message
					for _, m := range ph.Messages {
						if _, ok := sub.Slot[request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)}]; ok {
							msgs = append(msgs, m)
						}
					}
					out, err := sim.RunCompiled(sub, msgs)
					if err != nil {
						b.Fatal(err)
					}
					total += reconfigPerSlot*sub.Degree() + barrier + out.Time
				}
			}
			b.ReportMetric(float64(total), "slots")
		})
	}
}

// BenchmarkExtensionCentralized quantifies the Section 2 claim that
// centralized dynamic control does not scale: the single controller's
// serial request processing dominates for dense patterns.
func BenchmarkExtensionCentralized(b *testing.B) {
	phases, err := apps.P3M(32)
	if err != nil {
		b.Fatal(err)
	}
	gs, err := apps.GS(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range []struct {
		name string
		msgs []sim.Message
	}{{"GS-64", gs.Messages}, {"P3M2-32", phases[1].Messages}} {
		b.Run(row.name, func(b *testing.B) {
			var last int
			for i := 0; i < b.N; i++ {
				out, err := sim.RunCentralized(benchTorus, row.msgs, sim.DefaultCentralizedParams())
				if err != nil {
					b.Fatal(err)
				}
				last = out.Time
			}
			b.ReportMetric(float64(last), "slots")
		})
	}
}

// BenchmarkExtensionEmbedding compares logical-rank embeddings for the
// hypercube pattern: identity (the paper's implicit choice) versus the
// Gray-code embedding that makes bit neighbors near neighbors.
func BenchmarkExtensionEmbedding(b *testing.B) {
	set, err := patterns.Hypercube(64)
	if err != nil {
		b.Fatal(err)
	}
	gray, err := embed.GrayTorus(benchTorus)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range []struct {
		name string
		m    embed.Mapping
	}{{"identity", embed.Identity(64)}, {"gray", gray}} {
		b.Run(row.name, func(b *testing.B) {
			var deg int
			for i := 0; i < b.N; i++ {
				d, _, err := embed.Cost(benchTorus, schedule.Combined{}, set, row.m)
				if err != nil {
					b.Fatal(err)
				}
				deg = d
			}
			b.ReportMetric(float64(deg), "degree")
		})
	}
}

// BenchmarkExtensionMultihop runs the comparison the paper's section 3.3
// defers: serving compile-time-unknown traffic via a statically embedded
// virtual hypercube (multihop emulation, shallow TDM frame) versus the
// direct AAPC fallback (single hop, 64-slot frame).
func BenchmarkExtensionMultihop(b *testing.B) {
	emu, err := multihop.Compile(benchTorus, multihop.HypercubeVirtual{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	fallback, err := schedule.OrderedAAPC{}.Schedule(benchTorus, patterns.AllToAll(64))
	if err != nil {
		b.Fatal(err)
	}
	for _, gap := range []int{800, 200} {
		rng := rand.New(rand.NewSource(11))
		msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{Nodes: 64, MessagesPerNode: 10, Flits: 2, MeanGap: gap})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gap=%d/virtual-hypercube", gap), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				out, err := emu.RunEmulation(msgs, 2)
				if err != nil {
					b.Fatal(err)
				}
				lat, err = sim.MeanLatency(msgs, out.Finish)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat, "slots/msg")
		})
		b.Run(fmt.Sprintf("gap=%d/aapc-fallback", gap), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				out, err := sim.RunCompiled(fallback, msgs)
				if err != nil {
					b.Fatal(err)
				}
				lat, err = sim.MeanLatency(msgs, out.Finish)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat, "slots/msg")
		})
	}
}

// BenchmarkExtensionAdaptiveRouting measures the gain from letting the
// compiler choose X-then-Y or Y-then-X per connection instead of fixing
// dimension order globally.
func BenchmarkExtensionAdaptiveRouting(b *testing.B) {
	sets := randomSets(b, 1000, 10)
	b.Run("fixed-xy", func(b *testing.B) {
		reportDegree(b, schedule.Greedy{}, sets)
	})
	b.Run("adaptive", func(b *testing.B) {
		sum, count := 0, 0
		for i := 0; i < b.N; i++ {
			plan, err := adaptive.Schedule(benchTorus, sets[i%len(sets)], nil)
			if err != nil {
				b.Fatal(err)
			}
			sum += plan.Degree()
			count++
		}
		b.ReportMetric(float64(sum)/float64(count), "degree")
	})
}

// --- Parallel scheduling pipeline --------------------------------------------

// withGraphBuildKnobs runs fn with the conflict-graph build knobs overridden
// and restores the defaults afterwards.
func withGraphBuildKnobs(cutoff, workers int, fn func()) {
	oldCutoff, oldWorkers := schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers
	schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers = cutoff, workers
	defer func() {
		schedule.ConflictGraphParallelCutoff, schedule.ConflictGraphWorkers = oldCutoff, oldWorkers
	}()
	fn()
}

// BenchmarkCombinedPipeline measures the parallel scheduling pipeline on the
// paper's 8x8-torus AAPC workload (the 4032-request all-to-all) as a ladder
// from the pre-parallel pipeline to the current default, switching one stage
// on per rung:
//
//	baseline       sequential Combined, serial graph build, routes recomputed
//	routes-warm    + route cache serving every (s,d) lookup
//	sharded-graph  + parallel conflict-graph row construction
//	parallel       + Combined racing its member schedulers (the default)
//
// The headline comparison is baseline vs parallel. All rungs produce
// byte-identical schedules (see internal/schedule/determinism_test.go); only
// the wall clock may differ.
func BenchmarkCombinedPipeline(b *testing.B) {
	set := patterns.AllToAll(64)
	// Warm the name-keyed AAPC decomposition cache, which predates this
	// pipeline and is shared by every rung.
	if _, err := (schedule.Combined{}).Schedule(benchTorus, set); err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name        string
		sched       schedule.Combined
		serialGraph bool
		coldRoutes  bool
	}{
		{"baseline", schedule.Combined{Sequential: true}, true, true},
		{"routes-warm", schedule.Combined{Sequential: true}, true, false},
		{"sharded-graph", schedule.Combined{Sequential: true}, false, false},
		{"parallel", schedule.Combined{}, false, false},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			workers := 0
			if cfg.serialGraph {
				workers = 1
			}
			withGraphBuildKnobs(schedule.ConflictGraphParallelCutoff, workers, func() {
				network.InvalidateRoutes(benchTorus)
				if !cfg.coldRoutes {
					if _, err := cfg.sched.Schedule(benchTorus, set); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if cfg.coldRoutes {
						network.InvalidateRoutes(benchTorus)
					}
					res, err := cfg.sched.Schedule(benchTorus, set)
					if err != nil {
						b.Fatal(err)
					}
					if res.Degree() != 64 {
						b.Fatalf("degree %d", res.Degree())
					}
				}
			})
		})
	}
}

// BenchmarkCompileAll compares a serial loop over Compiler.Compile with the
// concurrent CompileAll batch API on a Tables 1-3 style sweep: 8 random
// 1200-connection patterns on the 8x8 torus.
func BenchmarkCompileAll(b *testing.B) {
	comp := ccomm.Compiler{Topology: benchTorus}
	sets := randomSets(b, 1200, 8)
	b.Run("serial-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, set := range sets {
				if _, err := comp.Compile(set); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := comp.CompileAll(sets); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Infrastructure micro-benchmarks ----------------------------------------

func BenchmarkConflictGraphBuild(b *testing.B) {
	set := patterns.AllToAll(64)
	paths, err := set.Routes(benchTorus)
	if err != nil {
		b.Fatal(err)
	}
	builds := []struct {
		name    string
		workers int
	}{{"serial", 1}, {"sharded", 0}}
	for _, mode := range builds {
		b.Run(mode.name, func(b *testing.B) {
			withGraphBuildKnobs(1, mode.workers, func() {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := schedule.BuildConflictGraph(benchTorus, paths)
					if g.Len() != 4032 {
						b.Fatal("bad graph")
					}
				}
			})
		})
	}
}

// BenchmarkCachedRoute isolates the route cache itself: a warm hit versus
// recomputing the dimension-ordered route (BenchmarkTorusRoute is the
// uncached equivalent of the miss path).
func BenchmarkCachedRoute(b *testing.B) {
	network.InvalidateRoutes(benchTorus)
	defer network.InvalidateRoutes(benchTorus)
	for s := 0; s < 64; s++ { // warm every pair
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			if _, err := network.CachedRoute(benchTorus, network.NodeID(s), network.NodeID(d)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := network.NodeID(i % 64)
		dst := network.NodeID((i*31 + 7) % 64)
		if src == dst {
			continue
		}
		if _, err := network.CachedRoute(benchTorus, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAAPCDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh torus value defeats the name-keyed cache in DecompositionFor;
		// use the aapc package directly through a fresh topology each time.
		torus := topology.NewTorus(8, 8)
		res, err := schedule.OrderedAAPC{}.Schedule(torus, patterns.AllToAll(64))
		if err != nil {
			b.Fatal(err)
		}
		if res.Degree() != 64 {
			b.Fatalf("degree %d", res.Degree())
		}
	}
}

func BenchmarkTorusRoute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := network.NodeID(i % 64)
		dst := network.NodeID((i*31 + 7) % 64)
		if src == dst {
			continue
		}
		if _, err := benchTorus.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

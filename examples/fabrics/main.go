// Fabrics: a modern workload on a modern fabric, in one process. This
// example builds a 512-PE dragonfly (8 routers per group, 16 groups, 4 PEs
// per router — every ordered group pair funneled through one global link),
// generates the MoE-style sparse all-to-all (each rank dispatches its
// tokens to top-k seeded experts, then the combine phase mirrors the
// routes back), starts the internal/service HTTP server on a loopback
// port, and replays the trace through /session. The dispatch and combine
// phases select different circuits, so unlike the iterative ring all-reduce
// of examples/session the planner cannot collapse the boundary into a free
// "keep" — the table shows what phase switching costs on a real fabric.
//
// Run with: go run ./examples/fabrics
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"text/tabwriter"

	"repro/internal/collective"
	"repro/internal/network"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	fabric := topology.NewDragonfly(8, 16, 4)
	pes := network.TerminalCount(fabric)

	svc, err := service.New(service.Config{Topology: fabric})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("ccserved listening on %s, fabric %s (%d PEs)\n\n", ln.Addr(), fabric.Name(), pes)

	// The program: every rank routes its tokens to 4 of 512 experts
	// (dispatch), receives the processed tokens back (combine). The gate
	// draw is seeded, so the exchange — and the compiled schedule — is
	// reproducible.
	coll, err := collective.MoEAllToAll(pes, 4, 16, 2026)
	if err != nil {
		log.Fatal(err)
	}
	doc := trace.FromProgram(coll.Program(1), pes)

	c := &client.Client{BaseURL: "http://" + ln.Addr().String()}
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "phase\tdecision\tcandidate\tdegree\tstall\thidden\tcomm\t")
	res, err := c.Session(context.Background(), doc, client.Options{},
		func(ch service.SessionChunk) {
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t\n",
				ch.Result.Name, ch.Decision, ch.Cache, ch.Result.Degree,
				ch.Stall, ch.Hidden, ch.Result.PredictedSlots)
		})
	if err != nil {
		log.Fatal(err)
	}
	w.Flush()
	if err := client.VerifySession(doc, res); err != nil {
		log.Fatal(err)
	}

	t := res.Trailer
	fmt.Printf("\n%d phases, decisions %v, schedules verified client-side\n",
		len(res.Phases), res.Decisions())
	fmt.Printf("iteration: %d slots overlapped, %d serialized, %d with an "+
		"independent compile-and-load per phase\n",
		t.TotalSlots, t.SerializedSlots, t.BaselineSlots)
	fmt.Printf("the daemon ran %d of %d compiles pipelined behind the stream\n",
		t.PipelinedCompiles, len(res.Phases))
}

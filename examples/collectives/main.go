// Collectives: broadcast, scatter and all-reduce built as sequences of
// compiled communication rounds. Each round is a static pattern the
// compiler schedules at its own minimal multiplexing degree; the whole
// operation becomes a multi-phase program whose cost — including the
// register reloads between rounds — the simulator prices exactly.
//
// Run with: go run ./examples/collectives
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	torus := topology.NewTorus(8, 8)
	compiler := core.Compiler{Topology: torus}

	ops := []func() (collective.Collective, error){
		func() (collective.Collective, error) { return collective.Broadcast(0, 64, 256) },
		func() (collective.Collective, error) { return collective.Scatter(0, 64, 64) },
		func() (collective.Collective, error) { return collective.Gather(0, 64, 64) },
		func() (collective.Collective, error) { return collective.AllGather(64, 16) },
		func() (collective.Collective, error) { return collective.AllReduce(64, 256) },
	}

	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "operation\trounds\tmax degree\tone shot (slots)\t")
	for _, build := range ops {
		c, err := build()
		if err != nil {
			log.Fatal(err)
		}
		cp, err := compiler.Compile(c.Program(4))
		if err != nil {
			log.Fatal(err)
		}
		total, _, err := cp.IterationTime(core.DefaultReconfigCost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t\n", c.Name, c.NumRounds(), cp.MaxDegree(), total)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nEvery round is a sparse tree or exchange pattern, so each compiles")
	fmt.Println("to a small multiplexing degree; the compiler pays one register reload")
	fmt.Println("per round instead of per-message control.")
}

// Session: the multi-phase streaming path, in one process. This example
// starts the internal/service HTTP server on a loopback port, builds the
// ring all-reduce collective on 64 PEs — 2(n-1) rounds that all reuse the
// same ring circuits — and streams it through /session. Phase chunks are
// printed as they arrive off the wire: the daemon flushes phase i while it
// is already resolving phase i+1, and the keep/patch/recompile decision
// column shows the reconfigure-or-not planner collapsing every boundary
// after the first into a free "keep". The trailer compares the planned
// iteration against serialized loading and against the paper's model of an
// independent compile-and-full-load per phase.
//
// Run with: go run ./examples/session
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"text/tabwriter"

	"repro/internal/collective"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	svc, err := service.New(service.Config{Topology: topology.NewTorus(8, 8)})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("ccserved listening on %s\n\n", ln.Addr())

	// The program: a 64-PE ring all-reduce, one phase per round. Every
	// round sends PE i -> PE i+1 — the textbook iterative workload whose
	// circuits never change after round one.
	coll, err := collective.RingAllReduce(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	doc := trace.FromProgram(coll.Program(1), 64)

	c := &client.Client{BaseURL: "http://" + ln.Addr().String()}
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "phase\tdecision\tcandidate\tdegree\tstall\thidden\tcomm\t")
	res, err := c.Session(context.Background(), doc, client.Options{},
		func(ch service.SessionChunk) {
			// Called per chunk as it is decoded from the stream, before the
			// session has finished — this callback IS the overlap: while it
			// runs, the daemon is compiling the next phase.
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t\n",
				ch.Result.Name, ch.Decision, ch.Cache, ch.Result.Degree,
				ch.Stall, ch.Hidden, ch.Result.PredictedSlots)
		})
	if err != nil {
		log.Fatal(err)
	}
	w.Flush()
	if err := client.VerifySession(doc, res); err != nil {
		log.Fatal(err)
	}

	t := res.Trailer
	fmt.Printf("\n%d phases, decisions %v, schedules verified client-side\n",
		len(res.Phases), res.Decisions())
	fmt.Printf("iteration: %d slots overlapped, %d serialized, %d with an "+
		"independent compile-and-load per phase\n",
		t.TotalSlots, t.SerializedSlots, t.BaselineSlots)
	fmt.Printf("the daemon ran %d of %d compiles pipelined behind the stream\n",
		t.PipelinedCompiles, len(res.Phases))
}

// Quickstart: compile a static communication pattern for an all-optical
// TDM torus and compare compiled communication against runtime control.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ccomm "repro"
)

func main() {
	// The paper's network: an 8x8 torus of 5x5 electro-optical crossbar
	// switches, time-division multiplexed.
	torus := ccomm.NewTorus8x8()

	// A static pattern: every PE talks to both neighbors on a logical ring
	// (the communication structure of many 1-D stencil codes).
	pattern := ccomm.RingPattern(64)

	// The compiler schedules all 128 connections into conflict-free
	// configurations, one per TDM slot, and lowers them to the switch
	// shift-register programs loaded before the communication phase runs.
	comp := ccomm.Compiler{Topology: torus, Algorithm: ccomm.Combined}
	phase, err := comp.Compile(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: logical ring, %d connections\n", len(pattern))
	fmt.Printf("multiplexing degree: %d (the network cycles through %d configurations)\n",
		phase.Degree(), phase.Degree())
	fmt.Printf("switch crossbar entries: %d\n\n", phase.Program.ActiveEntries())

	// Attach a 16-flit message to every connection and simulate.
	msgs := make([]ccomm.Message, len(pattern))
	for i, r := range pattern {
		msgs[i] = ccomm.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 16}
	}
	compiled, err := phase.Simulate(msgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled communication: %d slots\n", compiled.Time)

	// The same traffic under a runtime path-reservation protocol on a
	// network with fixed multiplexing degree 2.
	dynamic, err := ccomm.SimulateDynamic(torus, msgs, ccomm.DefaultSimParams(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic control (K=2): %d slots (%d reservation attempts, %d blocked)\n",
		dynamic.Time, dynamic.Attempts, dynamic.Blocked)
	fmt.Printf("speedup from compiling the communication: %.1fx\n",
		float64(dynamic.Time)/float64(compiled.Time))
}

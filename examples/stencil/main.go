// Stencil: the GS workload of the paper — Gauss-Seidel iterations whose
// PEs form a logical linear array and exchange boundary rows each
// iteration. Shows how the compiled multiplexing degree stays at the
// pattern's optimum while fixed-degree dynamic control wastes bandwidth,
// and how the gap scales with problem size.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	ccomm "repro"
	"repro/internal/apps"
)

func main() {
	torus := ccomm.NewTorus8x8()
	comp := ccomm.Compiler{Topology: torus, Algorithm: ccomm.Combined}

	fmt.Println("GS boundary exchange on 64 PEs (logical linear array, 8x8 torus)")
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "problem\tmsg flits\tdegree\tcompiled\tdyn K=1\tdyn K=2\tdyn K=10\tbest speedup\t")
	for _, n := range []int{64, 128, 256, 512} {
		phase, err := apps.GS(n, 64)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := comp.Compile(toSet(phase.Messages))
		if err != nil {
			log.Fatal(err)
		}
		compiled, err := cp.Simulate(phase.Messages)
		if err != nil {
			log.Fatal(err)
		}
		best := 1 << 62
		times := map[int]int{}
		for _, k := range []int{1, 2, 10} {
			dyn, err := ccomm.SimulateDynamic(torus, phase.Messages, ccomm.DefaultSimParams(k))
			if err != nil {
				log.Fatal(err)
			}
			times[k] = dyn.Time
			if dyn.Time < best {
				best = dyn.Time
			}
		}
		fmt.Fprintf(w, "%dx%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1fx\t\n",
			n, n, phase.Messages[0].Flits, cp.Degree(), compiled.Time,
			times[1], times[2], times[10], float64(best)/float64(compiled.Time))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNote: the compiled network runs at the pattern's own degree (2);")
	fmt.Println("dynamic control pays the reservation round trip per message and, at")
	fmt.Println("higher fixed degrees, idles unused time slots (the paper's Table 5 GS rows).")
}

func toSet(msgs []ccomm.Message) ccomm.RequestSet {
	set := make(ccomm.RequestSet, len(msgs))
	for i, m := range msgs {
		set[i] = ccomm.Request{Src: ccomm.NodeID(m.Src), Dst: ccomm.NodeID(m.Dst)}
	}
	return set
}

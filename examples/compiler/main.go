// Compiler: the full compiled-communication pipeline on a whole program.
// A miniature data-parallel program is written in the frontend IR; the
// frontend recognizes each statement's communication pattern (the paper's
// "pattern recognition" stage), the core compiler schedules every phase at
// its own minimal multiplexing degree and lowers it to switch programs, an
// optical tracer verifies the registers physically deliver each circuit,
// and the simulator prices one program iteration including reconfiguration.
//
// Run with: go run ./examples/compiler
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/optics"
	"repro/internal/redist"
	"repro/internal/topology"
)

func main() {
	// An ADI-style solver: a 256x256x1 grid swept in x (rows distributed),
	// transposed by redistribution, swept in y, transposed back — plus an
	// input-dependent gather the compiler cannot analyze.
	byRows, err := redist.NewDist([3]redist.DimDist{{P: 64, B: 4}, {P: 1, B: 256}, {P: 1, B: 1}})
	must(err)
	byCols, err := redist.NewDist([3]redist.DimDist{{P: 1, B: 256}, {P: 64, B: 4}, {P: 1, B: 1}})
	must(err)

	prog := frontend.Program{
		Name: "adi",
		PEs:  64,
		Arrays: []frontend.Array{
			{Name: "u", Shape: [3]int{256, 256, 1}, Dist: byRows},
		},
		Stmts: []frontend.Stmt{
			frontend.ShiftRef{Name: "x-sweep", Array: "u", Offsets: [][3]int{{-1, 0, 0}, {1, 0, 0}}},
			frontend.Redistribute{Name: "transpose", Array: "u", To: byCols},
			frontend.ShiftRef{Name: "y-sweep", Array: "u", Offsets: [][3]int{{0, -1, 0}, {0, 1, 0}}},
			frontend.Redistribute{Name: "transpose-back", Array: "u", To: byRows},
			frontend.IrregularRef{Name: "refine", Array: "u"},
		},
	}

	extracted, err := frontend.Extract(prog, frontend.Options{})
	must(err)
	pf, mf := frontend.StaticFraction(extracted)
	fmt.Printf("program %q: %d communication phases recognized\n", extracted.Name, len(extracted.Phases))
	fmt.Printf("static fraction: %.0f%% of phases, %.1f%% of messages (paper cites >95%% static)\n\n",
		100*pf, 100*mf)

	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus}.Compile(extracted)
	must(err)

	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "phase\tkind\tconns\tdegree\tregister entries\t")
	for i := range cp.Phases {
		ph := &cp.Phases[i]
		kind := "static"
		if ph.UsedFallback {
			kind = "dynamic->AAPC"
		}
		// Physically verify the compiled registers with the light tracer.
		tracer := optics.NewTracer(ph.Program)
		if _, err := tracer.VerifySchedule(ph.Schedule.Slot); err != nil {
			log.Fatalf("phase %s: optical verification failed: %v", ph.Phase.Name, err)
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t\n",
			ph.Phase.Name, kind, len(ph.Phase.Messages), ph.Degree(), ph.Program.ActiveEntries())
	}
	must(w.Flush())
	fmt.Println("\nall circuits verified by tracing light through the compiled registers")

	total, breakdown, err := cp.IterationTime(core.DefaultReconfigCost)
	must(err)
	fmt.Printf("\none iteration: %d slots total\n", total)
	for i, ph := range cp.Phases {
		fmt.Printf("  %-15s reconfigure %3d + communicate %5d\n",
			ph.Phase.Name, breakdown[i][0], breakdown[i][1])
	}
	ten, err := cp.ProgramTime(10, core.DefaultReconfigCost)
	must(err)
	fmt.Printf("ten iterations: %d slots (reconfiguration at every phase boundary)\n", ten)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

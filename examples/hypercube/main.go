// Hypercube: the TSCF workload of the paper — small fixed-size messages in
// a hypercube exchange, where dynamic control's startup overhead dwarfs the
// transfer time. Also demonstrates the compiler's handling of patterns it
// cannot analyze: a phase marked Dynamic is served by the predetermined
// all-to-all (AAPC) configuration set, so every PE still has a slot to
// reach every other PE without runtime reservations.
//
// Run with: go run ./examples/hypercube
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	torus := topology.NewTorus(8, 8)
	tscf, err := apps.TSCF(64)
	if err != nil {
		log.Fatal(err)
	}

	// Suppose the last phase's pattern is input-dependent: the compiler
	// marks it Dynamic and falls back to the AAPC configuration set.
	dynMsgs := []sim.Message{
		{Src: 3, Dst: 42, Flits: 2}, {Src: 17, Dst: 9, Flits: 2}, {Src: 60, Dst: 1, Flits: 2},
	}
	prog := core.Program{
		Name: "TSCF",
		Phases: []core.Phase{
			{Name: "hypercube exchange", Messages: tscf.Messages},
			{Name: "irregular gather", Messages: dynMsgs, Dynamic: true},
		},
	}
	cp, err := core.Compiler{Topology: torus}.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}

	static := &cp.Phases[0]
	fmt.Printf("static hypercube phase: %d messages of %d flits, compiled degree %d\n",
		len(tscf.Messages), tscf.Messages[0].Flits, static.Degree())
	comp, err := sim.RunCompiled(static.Schedule, tscf.Messages)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []int{1, 2, 5, 10} {
		dyn, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(k)}.Run(tscf.Messages)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  compiled %4d slots   vs   dynamic K=%-2d %5d slots  (%.0fx)\n",
			comp.Time, k, dyn.Time, float64(dyn.Time)/float64(comp.Time))
	}
	fmt.Println("small messages make the reservation round trip the dominant cost —")
	fmt.Println("the paper's TSCF row shows the same an-order-of-magnitude gap.")

	fallback := &cp.Phases[1]
	fmt.Printf("\ndynamic phase served by the AAPC fallback: degree %d (every PE can\n", fallback.Degree())
	fmt.Println("reach every other PE in some slot, no runtime control needed)")
	out, err := sim.RunCompiled(fallback.Schedule, dynMsgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("irregular gather finished in %d slots through predetermined configurations\n", out.Time)
}

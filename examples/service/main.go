// Service: the compile daemon end to end, in one process. This example
// starts the internal/service HTTP server on a loopback port, compiles the
// P3M long-range force pattern (Table 4 of the paper) through the Go client,
// and prints what the paper's compiled-communication contract promises: the
// multiplexing degree each phase was scheduled at and the predicted
// communication time. A second, identical request demonstrates the
// content-addressed cache — same key, byte-identical artifact, no second
// compile.
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	// The daemon: default 8x8 torus, paper's combined scheduler.
	svc, err := service.New(service.Config{Topology: topology.NewTorus(8, 8)})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("ccserved listening on %s\n\n", ln.Addr())

	// The program: P3M's three communication phases on 64 PEs — the same
	// document `ccrun -emit p3m32` emits and examples/traces holds for the
	// 64-body variant.
	phases, err := apps.P3M(32)
	if err != nil {
		log.Fatal(err)
	}
	prog := core.Program{Name: "p3m-32"}
	for _, ph := range phases {
		prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
	}
	doc := trace.FromProgram(prog, 64)

	c := &client.Client{BaseURL: "http://" + ln.Addr().String()}
	ctx := context.Background()
	resp, res, err := c.Compile(ctx, doc, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Verify(doc, res); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compiled %s on %s with %s (cache %s, key %s...)\n\n",
		res.Program, res.Topology, res.Scheduler, resp.Cache, resp.Key[:12])
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "phase\tmessages\tdegree\tpredicted slots\t")
	for i, ph := range res.Phases {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t\n", ph.Name, len(doc.Phases[i].Messages), ph.Degree, ph.PredictedSlots)
	}
	w.Flush()
	fmt.Printf("\nmax multiplexing degree %d, one iteration in %d slots "+
		"(%d reconfigurations included)\n", res.MaxDegree, res.TotalSlots, res.Reconfigurations)

	// The same program again: served from the content-addressed cache.
	resp2, _, err := c.Compile(ctx, doc, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond request: cache %s — the pipeline ran once, the artifact is reused\n", resp2.Cache)
}

// Faults: what happens to a compiled network when a fiber dies. A shift
// permutation is compiled on the healthy 8x8 torus; we then cut a link the
// schedule depends on, recompile the pattern against the fault-masked
// topology (the scheduler, switch lowering and optics verification all run
// unchanged on the masked view), and replay the phase through the failure
// with fault.RecoverCompiled to show the explicit recovery cost compiled
// communication pays — versus the retries and reroutes the dynamic
// protocol absorbs for the same failure.
//
// Run with: go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	torus := topology.NewTorus(8, 8)

	// The workload: every PE sends 32 flits to the PE 9 ahead of it.
	var reqs request.Set
	var msgs []sim.Message
	for i := 0; i < 64; i++ {
		reqs = append(reqs, request.Request{Src: network.NodeID(i), Dst: network.NodeID((i + 9) % 64)})
		msgs = append(msgs, sim.Message{Src: i, Dst: (i + 9) % 64, Flits: 32})
	}

	healthy, err := schedule.Combined{}.Schedule(torus, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy compile: degree %d for %d circuits\n", healthy.Degree(), len(reqs))

	// Kill a link the pattern actually uses: the first hop of 0 -> 9.
	p, err := torus.Route(0, 9)
	if err != nil {
		log.Fatal(err)
	}
	dead := p.Links[0]
	li := torus.Link(dead)
	fmt.Printf("cutting link %d (switch %d -> switch %d)\n\n", dead, li.From, li.To)

	// Recompile on the masked topology. Recompile also lowers the schedule
	// to switch shift-register programs and traces light through them, so a
	// non-nil error here would mean the degraded schedule cannot drive the
	// surviving hardware.
	faults := fault.NewSet()
	faults.FailLink(dead)
	masked := fault.NewMasked(torus, faults)
	degraded, prog, err := fault.Recompile(masked, reqs, schedule.Combined{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recompiled on %s:\n", masked.Name())
	fmt.Printf("  degree %d -> %d, %d switch register entries, light trace verified\n",
		healthy.Degree(), degraded.Degree(), prog.ActiveEntries())

	// No recompiled circuit touches the dead link.
	for _, cfg := range degraded.Configs {
		for _, q := range cfg {
			route, err := network.CachedRoute(masked, q.Src, q.Dst)
			if err != nil {
				log.Fatal(err)
			}
			for _, l := range route.Links {
				if l == dead {
					log.Fatalf("circuit %v crosses the dead link", q)
				}
			}
		}
	}
	fmt.Println("  no degraded circuit crosses the dead link")

	// Every message is still delivered on the degraded schedule.
	out, err := sim.RunCompiled(degraded, msgs)
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range out.Finish {
		if f == 0 {
			log.Fatalf("message %d never delivered on the degraded schedule", i)
		}
	}
	fmt.Printf("  all %d messages delivered in %d slots\n\n", len(msgs), out.Time)

	// The same failure as a mid-phase event: the phase runs on the healthy
	// schedule until slot 20, pays detection + recompilation + register
	// reload, and finishes on the degraded schedule.
	rec, err := fault.RecoverCompiled(torus, msgs,
		[]fault.Event{{Slot: 20, Kind: fault.LinkFault, Link: dead}},
		fault.Options{Scheduler: schedule.Combined{}, DetectSlots: 16, CompileSlots: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mid-phase failure at slot 20:\n")
	fmt.Printf("  healthy phase: %d slots; with failure: %d slots (%d stalled in recovery)\n",
		rec.HealthyTime, rec.TotalTime, rec.StallSlots)
	fmt.Printf("  delivered %d/%d, lost %d (no message was disconnected)\n\n",
		rec.Delivered, len(msgs), rec.Lost)

	// Dynamic control rides through the same failure with retries/reroutes.
	s, err := sim.NewSimulator(torus, sim.DefaultParams(rec.HealthyDegree))
	if err != nil {
		log.Fatal(err)
	}
	var dyn sim.DynamicResult
	if err := s.RunFaulted(msgs, []sim.FaultEvent{{Slot: 20, Link: dead}}, &dyn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic control through the same failure (K=%d):\n", rec.HealthyDegree)
	fmt.Printf("  %d slots, %d attempts torn down by the fault, %d rerouted, %d lost\n",
		dyn.Time, dyn.FaultAborts, dyn.Rerouted, dyn.Lost)
}

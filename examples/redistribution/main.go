// Redistribution: the P3M workload of the paper — a program whose phases
// redistribute a 3-D mesh between block-cyclic layouts and exchange ghost
// regions. Demonstrates the whole-program compiler: per-phase schedules
// with per-phase multiplexing degrees and switch programs, reconfigured
// only at phase boundaries.
//
// Run with: go run ./examples/redistribution
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	torus := topology.NewTorus(8, 8)
	phases, err := apps.P3M(32)
	if err != nil {
		log.Fatal(err)
	}

	prog := core.Program{Name: "P3M (32^3 mesh, 64 PEs)"}
	for _, ph := range phases {
		prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
	}

	compiler := core.Compiler{Topology: torus}
	cp, err := compiler.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %s\n", prog.Name)
	fmt.Printf("phases: %d, network reconfigurations per iteration: %d, max degree: %d\n\n",
		len(cp.Phases), cp.Reconfigurations(), cp.MaxDegree())

	sims, err := cp.Simulate(torus, []int{1, 5}, nil)
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "phase\tconns\tdegree\tcompiled\tdyn K=1\tdyn K=5\tspeedup vs best\t")
	totalCompiled, totalDyn1, totalDyn5 := 0, 0, 0
	for i, s := range sims {
		best := s.DynamicTime[1]
		if s.DynamicTime[5] < best {
			best = s.DynamicTime[5]
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.1fx\t\n",
			s.Name, len(cp.Phases[i].Phase.Messages), s.Degree, s.CompiledTime,
			s.DynamicTime[1], s.DynamicTime[5], float64(best)/float64(s.CompiledTime))
		totalCompiled += s.CompiledTime
		totalDyn1 += s.DynamicTime[1]
		totalDyn5 += s.DynamicTime[5]
	}
	fmt.Fprintf(w, "TOTAL\t\t\t%d\t%d\t%d\t\t\n", totalCompiled, totalDyn1, totalDyn5)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nPer-phase degrees differ because the compiler picks the minimal degree")
	fmt.Println("per pattern; a dynamically controlled network is stuck with one fixed K.")
}
